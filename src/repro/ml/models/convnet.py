"""A small convolutional network, implemented from scratch on numpy.

The paper's CIFAR-10/ImageNet workloads train deep CNNs; the calibrated
presets use MLPs for speed (see DESIGN.md), but this model closes the kind
gap for users who want convolutional dynamics: conv → ReLU → global average
pooling → linear softmax, with im2col-based forward/backward passes that
pass finite-difference gradient checks.

A batch is ``(X, y)`` where ``X`` is ``(n, C*H*W)`` flat features (as the
synthetic image datasets produce) reshaped internally to ``(n, C, H, W)``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.ml.models.base import Model
from repro.ml.models.softmax import cross_entropy, softmax
from repro.ml.params import ParamSet
from repro.utils.validation import check_non_negative

__all__ = ["ConvNetModel"]


def _im2col(images: np.ndarray, kernel: int) -> np.ndarray:
    """(n, C, H, W) → (n, out_h, out_w, C*kernel*kernel) patch matrix."""
    n, channels, height, width = images.shape
    out_h = height - kernel + 1
    out_w = width - kernel + 1
    # Gather patches with stride tricks-free indexing (clear over clever).
    cols = np.empty((n, out_h, out_w, channels, kernel, kernel),
                    dtype=images.dtype)
    for dy in range(kernel):
        for dx in range(kernel):
            cols[:, :, :, :, dy, dx] = images[
                :, :, dy:dy + out_h, dx:dx + out_w
            ].transpose(0, 2, 3, 1)
    return cols.reshape(n, out_h, out_w, channels * kernel * kernel)


def _col2im(grad_cols: np.ndarray, image_shape: Tuple[int, int, int, int],
            kernel: int) -> np.ndarray:
    """Adjoint of :func:`_im2col`: scatter patch gradients back to images."""
    n, channels, height, width = image_shape
    out_h = height - kernel + 1
    out_w = width - kernel + 1
    grads = np.zeros(image_shape, dtype=grad_cols.dtype)
    cols = grad_cols.reshape(n, out_h, out_w, channels, kernel, kernel)
    for dy in range(kernel):
        for dx in range(kernel):
            grads[:, :, dy:dy + out_h, dx:dx + out_w] += cols[
                :, :, :, :, dy, dx
            ].transpose(0, 3, 1, 2)
    return grads


class ConvNetModel(Model):
    """conv(k filters, kxk) → ReLU → global average pool → softmax."""

    def __init__(
        self,
        image_shape: Tuple[int, int, int],
        num_classes: int,
        num_filters: int = 8,
        kernel: int = 3,
        reg: float = 1e-4,
    ):
        channels, height, width = image_shape
        if min(channels, height, width) <= 0:
            raise ValueError(f"invalid image shape {image_shape}")
        if kernel < 1 or kernel > min(height, width):
            raise ValueError(
                f"kernel {kernel} does not fit image {height}x{width}"
            )
        if num_classes <= 1 or num_filters <= 0:
            raise ValueError("need num_classes >= 2 and num_filters >= 1")
        self.image_shape = (int(channels), int(height), int(width))
        self.num_classes = int(num_classes)
        self.num_filters = int(num_filters)
        self.kernel = int(kernel)
        self.reg = check_non_negative("reg", reg)
        self.input_dim = channels * height * width

    def init_params(self, rng: np.random.Generator) -> ParamSet:
        channels = self.image_shape[0]
        fan_in = channels * self.kernel * self.kernel
        return ParamSet(
            {
                "conv_w": rng.normal(
                    0.0, np.sqrt(2.0 / fan_in),
                    size=(fan_in, self.num_filters),
                ),
                "conv_b": np.zeros(self.num_filters),
                "fc_w": rng.normal(
                    0.0, np.sqrt(1.0 / self.num_filters),
                    size=(self.num_filters, self.num_classes),
                ),
                "fc_b": np.zeros(self.num_classes),
            }
        )

    def _forward(self, params: ParamSet, X: np.ndarray):
        n = len(X)
        images = X.reshape((n,) + self.image_shape)
        cols = _im2col(images, self.kernel)          # (n, oh, ow, fan_in)
        pre = cols @ params["conv_w"] + params["conv_b"]  # (n, oh, ow, F)
        act = np.maximum(pre, 0.0)                   # ReLU
        pooled = act.mean(axis=(1, 2))               # global average pool
        logits = pooled @ params["fc_w"] + params["fc_b"]
        return softmax(logits), (images, cols, pre, act, pooled)

    def loss(self, params: ParamSet, batch) -> float:
        X, y = self._unpack(batch)
        probs, _ = self._forward(params, X)
        return cross_entropy(probs, y) + self._reg_loss(params)

    def loss_and_grad(self, params: ParamSet, batch) -> Tuple[float, ParamSet]:
        X, y = self._unpack(batch)
        n = len(y)
        probs, (images, cols, pre, act, pooled) = self._forward(params, X)
        loss = cross_entropy(probs, y) + self._reg_loss(params)

        delta_logits = probs.copy()
        delta_logits[np.arange(n), y] -= 1.0
        delta_logits /= n                               # (n, classes)

        grad_fc_w = pooled.T @ delta_logits + self.reg * params["fc_w"]
        grad_fc_b = delta_logits.sum(axis=0)

        delta_pooled = delta_logits @ params["fc_w"].T  # (n, F)
        out_h, out_w = act.shape[1], act.shape[2]
        # Mean-pool adjoint: each spatial position gets 1/(oh*ow) share.
        delta_act = (
            delta_pooled[:, None, None, :]
            * np.ones((1, out_h, out_w, 1))
            / (out_h * out_w)
        )
        delta_pre = delta_act * (pre > 0.0)             # ReLU adjoint
        flat_cols = cols.reshape(-1, cols.shape[-1])
        flat_delta = delta_pre.reshape(-1, self.num_filters)
        grad_conv_w = flat_cols.T @ flat_delta + self.reg * params["conv_w"]
        grad_conv_b = flat_delta.sum(axis=0)

        grad = ParamSet(
            {
                "conv_w": grad_conv_w,
                "conv_b": grad_conv_b,
                "fc_w": grad_fc_w,
                "fc_b": grad_fc_b,
            }
        )
        return loss, grad

    def accuracy(self, params: ParamSet, batch) -> float:
        """Fraction of correct argmax predictions on ``batch``."""
        X, y = self._unpack(batch)
        probs, _ = self._forward(params, X)
        return float(np.mean(np.argmax(probs, axis=1) == y))

    def _reg_loss(self, params: ParamSet) -> float:
        return 0.5 * self.reg * (
            float(np.sum(params["conv_w"] ** 2))
            + float(np.sum(params["fc_w"] ** 2))
        )

    def _unpack(self, batch):
        X, y = batch
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if X.ndim != 2 or X.shape[1] != self.input_dim:
            raise ValueError(
                f"X must be (n, {self.input_dim}) flat images, got {X.shape}"
            )
        if len(X) != len(y) or len(y) == 0:
            raise ValueError("X and y must be non-empty and equal length")
        return X, y
