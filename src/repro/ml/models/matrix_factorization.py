"""Matrix factorization for recommendation (the paper's MF workload).

The model learns user and item embeddings ``U`` (num_users × rank) and
``V`` (num_items × rank) so that ``U[u] · V[i]`` predicts rating ``r`` —
trained by SGD on a regularized squared error, exactly the formulation the
MovieLens workload in the paper uses.  Gradients are sparse (only rows of
users/items in the batch are touched) but returned as dense ParamSets to
match the parameter-server push interface.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.ml.models.base import Model
from repro.ml.params import ParamSet
from repro.utils.validation import check_non_negative, check_positive

__all__ = ["MatrixFactorizationModel"]


class MatrixFactorizationModel(Model):
    """Biased matrix factorization: r̂ = U[u]·V[i] + bu[u] + bi[i] + mu.

    A batch is a tuple ``(users, items, ratings)`` of equal-length arrays.
    """

    def __init__(
        self,
        num_users: int,
        num_items: int,
        rank: int = 16,
        reg: float = 0.02,
        init_scale: float = 0.1,
        global_mean: float = 0.0,
    ):
        if num_users <= 0 or num_items <= 0:
            raise ValueError("num_users and num_items must be positive")
        if rank <= 0:
            raise ValueError(f"rank must be positive, got {rank}")
        self.num_users = int(num_users)
        self.num_items = int(num_items)
        self.rank = int(rank)
        self.reg = check_non_negative("reg", reg)
        self.init_scale = check_positive("init_scale", init_scale)
        self.global_mean = float(global_mean)

    def init_params(self, rng: np.random.Generator) -> ParamSet:
        return ParamSet(
            {
                "user_factors": rng.normal(
                    0.0, self.init_scale, size=(self.num_users, self.rank)
                ),
                "item_factors": rng.normal(
                    0.0, self.init_scale, size=(self.num_items, self.rank)
                ),
                "user_bias": np.zeros(self.num_users),
                "item_bias": np.zeros(self.num_items),
            }
        )

    def _predict(self, params: ParamSet, users: np.ndarray, items: np.ndarray):
        u_vecs = params["user_factors"][users]
        i_vecs = params["item_factors"][items]
        dots = np.sum(u_vecs * i_vecs, axis=1)
        return dots + params["user_bias"][users] + params["item_bias"][items] + self.global_mean

    def loss(self, params: ParamSet, batch) -> float:
        users, items, ratings = self._unpack(batch)
        errors = self._predict(params, users, items) - ratings
        data_loss = float(np.mean(errors**2))
        u_vecs = params["user_factors"][users]
        i_vecs = params["item_factors"][items]
        reg_loss = self.reg * float(np.mean(np.sum(u_vecs**2 + i_vecs**2, axis=1)))
        return data_loss + reg_loss

    def loss_and_grad(self, params: ParamSet, batch) -> Tuple[float, ParamSet]:
        users, items, ratings = self._unpack(batch)
        n = len(ratings)
        u_vecs = params["user_factors"][users]
        i_vecs = params["item_factors"][items]
        errors = (
            np.sum(u_vecs * i_vecs, axis=1)
            + params["user_bias"][users]
            + params["item_bias"][items]
            + self.global_mean
            - ratings
        )
        data_loss = float(np.mean(errors**2))
        reg_loss = self.reg * float(np.mean(np.sum(u_vecs**2 + i_vecs**2, axis=1)))

        grad_u = np.zeros_like(params["user_factors"])
        grad_i = np.zeros_like(params["item_factors"])
        grad_bu = np.zeros_like(params["user_bias"])
        grad_bi = np.zeros_like(params["item_bias"])

        # d/dU[u] mean(err^2 + reg*(|U[u]|^2+|V[i]|^2))
        #   = (2/n) * (err * V[i] + reg * U[u]) summed over batch occurrences.
        coeff = 2.0 / n
        per_sample_u = coeff * (errors[:, None] * i_vecs + self.reg * u_vecs)
        per_sample_i = coeff * (errors[:, None] * u_vecs + self.reg * i_vecs)
        np.add.at(grad_u, users, per_sample_u)
        np.add.at(grad_i, items, per_sample_i)
        np.add.at(grad_bu, users, coeff * errors)
        np.add.at(grad_bi, items, coeff * errors)

        grad = ParamSet(
            {
                "user_factors": grad_u,
                "item_factors": grad_i,
                "user_bias": grad_bu,
                "item_bias": grad_bi,
            }
        )
        return data_loss + reg_loss, grad

    @staticmethod
    def _unpack(batch):
        users, items, ratings = batch
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        ratings = np.asarray(ratings, dtype=np.float64)
        if not (len(users) == len(items) == len(ratings)):
            raise ValueError("batch arrays must have equal length")
        if len(ratings) == 0:
            raise ValueError("batch must be non-empty")
        return users, items, ratings
