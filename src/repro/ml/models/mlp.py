"""A multi-layer perceptron with tanh activations.

The non-convex stand-in for the paper's deep residual networks (CIFAR-10
ResNet-110, ImageNet ResNet-18).  What the synchronization experiments need
from the model is (a) SGD-trainable non-convex dynamics where stale
gradients measurably slow convergence, and (b) a configurable size so the
CIFAR-class and ImageNet-class workloads differ the way Table I says they
do; an MLP provides both at simulation-friendly cost.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.ml.models.base import Model
from repro.ml.models.softmax import cross_entropy, softmax
from repro.ml.params import ParamSet
from repro.utils.validation import check_non_negative

__all__ = ["MLPModel"]


class MLPModel(Model):
    """Fully-connected net: input → tanh hidden layers → softmax output.

    A batch is ``(X, y)`` like :class:`SoftmaxRegressionModel`.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dims: Sequence[int],
        num_classes: int,
        reg: float = 1e-4,
    ):
        if input_dim <= 0 or num_classes <= 1:
            raise ValueError("need input_dim >= 1 and num_classes >= 2")
        hidden_dims = [int(h) for h in hidden_dims]
        if not hidden_dims or any(h <= 0 for h in hidden_dims):
            raise ValueError(f"hidden_dims must be non-empty positive ints, got {hidden_dims}")
        self.input_dim = int(input_dim)
        self.hidden_dims = hidden_dims
        self.num_classes = int(num_classes)
        self.reg = check_non_negative("reg", reg)
        self._layer_dims = [self.input_dim] + hidden_dims + [self.num_classes]

    @property
    def num_layers(self) -> int:
        """Number of weight matrices (hidden layers + output layer)."""
        return len(self._layer_dims) - 1

    def init_params(self, rng: np.random.Generator) -> ParamSet:
        arrays = {}
        for layer in range(self.num_layers):
            fan_in = self._layer_dims[layer]
            fan_out = self._layer_dims[layer + 1]
            # Xavier/Glorot initialization, standard for tanh nets.
            scale = np.sqrt(2.0 / (fan_in + fan_out))
            arrays[f"w{layer}"] = rng.normal(0.0, scale, size=(fan_in, fan_out))
            arrays[f"b{layer}"] = np.zeros(fan_out)
        return ParamSet(arrays)

    def _forward(self, params: ParamSet, X: np.ndarray):
        """Forward pass; returns (softmax probs, list of layer activations)."""
        activations: List[np.ndarray] = [X]
        h = X
        for layer in range(self.num_layers - 1):
            h = np.tanh(h @ params[f"w{layer}"] + params[f"b{layer}"])
            activations.append(h)
        logits = h @ params[f"w{self.num_layers - 1}"] + params[f"b{self.num_layers - 1}"]
        return softmax(logits), activations

    def loss(self, params: ParamSet, batch) -> float:
        X, y = self._unpack(batch)
        probs, _ = self._forward(params, X)
        return cross_entropy(probs, y) + self._reg_loss(params)

    def loss_and_grad(self, params: ParamSet, batch) -> Tuple[float, ParamSet]:
        X, y = self._unpack(batch)
        n = len(y)
        probs, activations = self._forward(params, X)
        loss = cross_entropy(probs, y) + self._reg_loss(params)

        grads = {}
        delta = probs.copy()
        delta[np.arange(n), y] -= 1.0
        delta /= n
        for layer in range(self.num_layers - 1, -1, -1):
            a_prev = activations[layer]
            grads[f"w{layer}"] = a_prev.T @ delta + self.reg * params[f"w{layer}"]
            grads[f"b{layer}"] = delta.sum(axis=0)
            if layer > 0:
                # Backprop through tanh: d tanh(z) = 1 - tanh(z)^2, and
                # activations[layer] already holds tanh(z).
                delta = (delta @ params[f"w{layer}"].T) * (1.0 - a_prev**2)
        return loss, ParamSet(grads)

    def accuracy(self, params: ParamSet, batch) -> float:
        """Fraction of correct argmax predictions on ``batch``."""
        X, y = self._unpack(batch)
        probs, _ = self._forward(params, X)
        return float(np.mean(np.argmax(probs, axis=1) == y))

    def _reg_loss(self, params: ParamSet) -> float:
        total = 0.0
        for layer in range(self.num_layers):
            total += float(np.sum(params[f"w{layer}"] ** 2))
        return 0.5 * self.reg * total

    def _unpack(self, batch):
        X, y = batch
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if X.ndim != 2 or X.shape[1] != self.input_dim:
            raise ValueError(f"X must be (n, {self.input_dim}), got {X.shape}")
        if len(X) != len(y) or len(y) == 0:
            raise ValueError("X and y must be non-empty and equal length")
        return X, y
