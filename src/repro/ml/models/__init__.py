"""Numerical models trained by the simulated cluster."""

from repro.ml.models.base import Model, Batch
from repro.ml.models.matrix_factorization import MatrixFactorizationModel
from repro.ml.models.softmax import SoftmaxRegressionModel
from repro.ml.models.mlp import MLPModel
from repro.ml.models.linear import LinearRegressionModel
from repro.ml.models.convnet import ConvNetModel

__all__ = [
    "Model",
    "Batch",
    "MatrixFactorizationModel",
    "SoftmaxRegressionModel",
    "MLPModel",
    "LinearRegressionModel",
    "ConvNetModel",
]
