"""Small argument-validation helpers used across the library.

Each helper raises ``ValueError`` (or ``TypeError`` for wrong types) with a
message naming the offending argument, and returns the validated value so
callers can validate inline::

    self.bandwidth = check_positive("bandwidth", bandwidth)
"""

from __future__ import annotations

from typing import Iterable, TypeVar

__all__ = ["check_positive", "check_non_negative", "check_probability", "check_in"]

T = TypeVar("T")


def _check_real(name: str, value: object) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    if value != value:  # NaN
        raise ValueError(f"{name} must not be NaN")
    return float(value)


def check_positive(name: str, value: object) -> float:
    """Validate that ``value`` is a real number strictly greater than zero."""
    real = _check_real(name, value)
    if real <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return real


def check_non_negative(name: str, value: object) -> float:
    """Validate that ``value`` is a real number greater than or equal to zero."""
    real = _check_real(name, value)
    if real < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return real


def check_probability(name: str, value: object) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    real = _check_real(name, value)
    if not 0.0 <= real <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return real


def check_in(name: str, value: T, allowed: Iterable[T]) -> T:
    """Validate that ``value`` is one of ``allowed``."""
    allowed = tuple(allowed)
    if value not in allowed:
        raise ValueError(f"{name} must be one of {allowed}, got {value!r}")
    return value
