"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows the paper's tables and figure
captions report; ``TextTable`` renders them with aligned columns so the
output is readable both in a terminal and in ``EXPERIMENTS.md`` code blocks.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["TextTable", "format_bytes", "format_duration"]


class TextTable:
    """An append-only table of stringifiable cells rendered with box rules.

    >>> table = TextTable(["scheme", "speedup"])
    >>> table.add_row(["ASP", "1.00x"])
    >>> table.add_row(["SpecSync", "2.25x"])
    >>> print(table.render())  # doctest: +NORMALIZE_WHITESPACE
    scheme   | speedup
    ---------+--------
    ASP      | 1.00x
    SpecSync | 2.25x
    """

    def __init__(self, headers: Sequence[str], title: str = ""):
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, cells: Iterable[object]) -> None:
        """Append one row; cells are stringified with ``str``."""
        row = [str(c) for c in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        """Return the formatted table as a single string."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt(cells: Sequence[str]) -> str:
            return " | ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

        rule = "-+-".join("-" * w for w in widths)
        lines = []
        if self.title:
            lines.append(self.title)
            lines.append("=" * len(self.title))
        lines.append(fmt(self.headers))
        lines.append(rule)
        lines.extend(fmt(row) for row in self.rows)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def format_bytes(num_bytes: float) -> str:
    """Render a byte count with a binary-free decimal unit, like the paper.

    >>> format_bytes(3.17e12)
    '3.17 TB'
    >>> format_bytes(2048)
    '2.05 KB'
    """
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB", "PB"):
        if abs(value) < 1000.0 or unit == "PB":
            if unit == "B":
                return f"{value:.0f} {unit}"
            return f"{value:.2f} {unit}"
        value /= 1000.0
    raise AssertionError("unreachable")


def format_duration(seconds: float) -> str:
    """Render a duration in the most natural unit.

    >>> format_duration(14.0)
    '14.0s'
    >>> format_duration(4200)
    '1h10m'
    """
    seconds = float(seconds)
    if seconds < 60:
        return f"{seconds:.1f}s"
    if seconds < 3600:
        minutes, secs = divmod(int(round(seconds)), 60)
        return f"{minutes}m{secs:02d}s"
    hours, rem = divmod(int(round(seconds)), 3600)
    minutes = rem // 60
    return f"{hours}h{minutes:02d}m"
