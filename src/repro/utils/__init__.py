"""Shared utilities: deterministic RNG streams, validation, table rendering.

These helpers are deliberately dependency-free (numpy only) so every other
subpackage can import them without cycles.
"""

from repro.utils.rng import RngStreams, derive_seed
from repro.utils.tables import TextTable, format_bytes, format_duration
from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_probability,
    check_in,
)

__all__ = [
    "RngStreams",
    "derive_seed",
    "TextTable",
    "format_bytes",
    "format_duration",
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in",
]
