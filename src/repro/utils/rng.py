"""Deterministic random-number streams.

A distributed-training simulation draws randomness in many places (batch
sampling per worker, compute-time jitter per worker, dataset generation,
model initialization).  If all of them shared one generator, adding a worker
or reordering events would perturb every other stream and destroy
reproducibility.  ``RngStreams`` derives an independent, stable
``numpy.random.Generator`` per named purpose from a single root seed.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "RngStreams"]

_SEED_MODULUS = 2**63 - 1


def derive_seed(root_seed: int, *names: object) -> int:
    """Derive a stable child seed from ``root_seed`` and a name path.

    The derivation hashes the textual path, so ``derive_seed(7, "worker", 3)``
    is the same in every process and Python version, and distinct name paths
    give (with overwhelming probability) distinct seeds.

    >>> derive_seed(7, "worker", 3) == derive_seed(7, "worker", 3)
    True
    >>> derive_seed(7, "worker", 3) != derive_seed(7, "worker", 4)
    True
    """
    text = repr(int(root_seed)) + "/" + "/".join(repr(n) for n in names)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") % _SEED_MODULUS


class RngStreams:
    """A family of independent named random generators under one root seed.

    >>> streams = RngStreams(42)
    >>> a = streams.get("compute", 0)
    >>> b = streams.get("compute", 1)
    >>> a is streams.get("compute", 0)   # cached per name path
    True
    """

    def __init__(self, root_seed: int):
        if root_seed < 0:
            raise ValueError(f"root_seed must be non-negative, got {root_seed}")
        self.root_seed = int(root_seed)
        self._cache: dict[tuple, np.random.Generator] = {}

    def get(self, *names: object) -> np.random.Generator:
        """Return the generator for a name path, creating it on first use."""
        key = tuple(names)
        if key not in self._cache:
            seed = derive_seed(self.root_seed, *names)
            self._cache[key] = np.random.default_rng(seed)
        return self._cache[key]

    def spawn(self, *names: object) -> "RngStreams":
        """Return a child ``RngStreams`` rooted under a name path."""
        return RngStreams(derive_seed(self.root_seed, *names))

    def __repr__(self) -> str:
        return f"RngStreams(root_seed={self.root_seed}, streams={len(self._cache)})"
