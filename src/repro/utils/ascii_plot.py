"""Terminal line plots for learning curves and transfer series.

The experiment renderers use these to show curve *shapes* (the paper's
figures) without a plotting dependency: a fixed-size character grid with
axis labels, supporting multiple named series.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["ascii_plot", "sparkline"]

_SERIES_MARKS = "*+ox#@%&"
_SPARK_LEVELS = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """A one-line intensity strip of ``values`` resampled to ``width``.

    >>> sparkline([0, 1, 2, 3], width=4)
    ' -*@'
    """
    values = [float(v) for v in values]
    if not values:
        return ""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    # Resample by nearest index.
    resampled = [
        values[min(len(values) - 1, int(i * len(values) / width))]
        for i in range(min(width, len(values)) if len(values) < width else width)
    ]
    lo, hi = min(resampled), max(resampled)
    span = hi - lo
    chars = []
    for value in resampled:
        level = 0 if span == 0 else int((value - lo) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[level])
    return "".join(chars)


def ascii_plot(
    series: Dict[str, List[Tuple[float, float]]],
    width: int = 72,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named (x, y) series on one character grid.

    Each series gets a distinct mark; a legend maps marks to names.  Points
    are nearest-cell rasterized; later series overwrite earlier ones where
    they collide (acceptable for shape comparison).
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 10 or height < 4:
        raise ValueError("plot area too small")

    all_points = [p for pts in series.values() for p in pts]
    if not all_points:
        raise ValueError("series contain no points")
    xs = [x for x, _ in all_points]
    ys = [y for _, y in all_points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, points) in enumerate(series.items()):
        mark = _SERIES_MARKS[idx % len(_SERIES_MARKS)]
        for x, y in points:
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            grid[row][col] = mark

    lines = []
    top_label = f"{y_hi:.4g}"
    bottom_label = f"{y_lo:.4g}"
    margin = max(len(top_label), len(bottom_label), len(y_label)) + 1
    for row_idx, row in enumerate(grid):
        if row_idx == 0:
            prefix = top_label.rjust(margin)
        elif row_idx == height - 1:
            prefix = bottom_label.rjust(margin)
        elif row_idx == height // 2:
            prefix = y_label.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(prefix + "|" + "".join(row))
    lines.append(" " * margin + "+" + "-" * width)
    x_axis = f"{x_lo:.4g}".ljust(width - 12) + f"{x_hi:.4g} {x_label}"
    lines.append(" " * (margin + 1) + x_axis)
    legend = "   ".join(
        f"{_SERIES_MARKS[i % len(_SERIES_MARKS)]} = {name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * (margin + 1) + legend)
    return "\n".join(lines)
