"""The simulated network: delivers messages with latency + serialization delay.

The model is a full-bisection fabric (like an EC2 placement group): each
message between two distinct nodes experiences

    delay = base_latency + size_bytes / bandwidth_bps * congestion_factor

with optional multiplicative jitter.  Loopback (src == dst, as when an MXNet
node hosts both a worker and a server — paper footnote 2) is free and
unaccounted, matching how the paper measures *network* transfer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.events import Simulator
from repro.netsim.ledger import TransferLedger
from repro.netsim.messages import Message
from repro.obs.clock import VirtualClock
from repro.obs.core import tracer_for
from repro.utils.validation import check_non_negative, check_positive

__all__ = ["LinkModel", "Network"]


@dataclass(frozen=True)
class LinkModel:
    """Per-message delay parameters.

    ``bandwidth_bps`` defaults to 6 Gb/s in bytes/s (m4.xlarge "high"
    networking, ~750 MB/s); ``base_latency`` to 0.5 ms (same-AZ EC2 RTT/2).
    ``jitter`` is the sigma of a lognormal multiplier on the whole delay
    (0 disables jitter and makes delivery deterministic).
    """

    bandwidth_bytes_per_s: float = 750e6
    base_latency_s: float = 0.0005
    congestion_factor: float = 1.0
    jitter_sigma: float = 0.0

    def __post_init__(self):
        check_positive("bandwidth_bytes_per_s", self.bandwidth_bytes_per_s)
        check_non_negative("base_latency_s", self.base_latency_s)
        check_positive("congestion_factor", self.congestion_factor)
        check_non_negative("jitter_sigma", self.jitter_sigma)

    def delay_for(
        self,
        size_bytes: float,
        rng: Optional[np.random.Generator],
        parallel_streams: int = 1,
    ) -> float:
        """Delay a message of ``size_bytes`` experiences on this link.

        ``parallel_streams`` models a sharded transfer: total bytes stay the
        same, but serialization happens concurrently over that many streams.
        """
        delay = self.base_latency_s + (
            size_bytes / parallel_streams / self.bandwidth_bytes_per_s
        ) * self.congestion_factor
        if self.jitter_sigma > 0 and rng is not None:
            delay *= float(rng.lognormal(mean=0.0, sigma=self.jitter_sigma))
        return delay


class Network:
    """Message fabric over the simulator: send → delay → deliver callback.

    All delivered messages are accounted in the ledger at delivery time,
    except loopback messages which never hit the wire.
    """

    def __init__(
        self,
        sim: Simulator,
        link: Optional[LinkModel] = None,
        ledger: Optional[TransferLedger] = None,
        rng: Optional[np.random.Generator] = None,
        node_bandwidth: Optional[dict] = None,
        serialize_node_transfers: bool = False,
    ):
        self.sim = sim
        self.link = link or LinkModel()
        self.ledger = ledger if ledger is not None else TransferLedger()
        self.rng = rng
        #: optional per-node NIC bandwidth (bytes/s); a message is limited
        #: by the slowest endpoint NIC that appears in the map (instance
        #: heterogeneity: m3 NICs are slower than m4 NICs).
        self.node_bandwidth = dict(node_bandwidth or {})
        #: opt-in congestion: a node's NIC serializes its transfers — each
        #: new message waits until the sender's previous transfers finish.
        #: Off by default (the calibrated experiments model a
        #: full-bisection fabric where parameter transfers are a small
        #: fraction of iteration time).
        self.serialize_node_transfers = serialize_node_transfers
        self._node_busy_until: dict = {}
        #: (src, dst) -> effective LinkModel.  The NIC map is fixed at
        #: construction, so the per-pair link never changes; caching it
        #: keeps the per-message path free of list/LinkModel allocation.
        self._link_cache: dict = {}
        self._messages_sent = 0
        self._messages_delivered = 0
        #: Observability: mirrors the ledger's accounting into live
        #: counters (bytes/messages per transfer category).  The shared
        #: no-op tracer when observability is disabled.
        self.tracer = tracer_for(VirtualClock(sim))

    def _link_for(self, src: str, dst: str) -> LinkModel:
        if not self.node_bandwidth:
            return self.link
        key = (src, dst)
        cached = self._link_cache.get(key)
        if cached is None:
            cached = self._build_link(src, dst)
            self._link_cache[key] = cached
        return cached

    def _build_link(self, src: str, dst: str) -> LinkModel:
        endpoint_bw = [
            self.node_bandwidth[node]
            for node in (src, dst)
            if node in self.node_bandwidth
        ]
        if not endpoint_bw:
            return self.link
        bandwidth = min(min(endpoint_bw), self.link.bandwidth_bytes_per_s)
        if bandwidth == self.link.bandwidth_bytes_per_s:
            return self.link
        return LinkModel(
            bandwidth_bytes_per_s=bandwidth,
            base_latency_s=self.link.base_latency_s,
            congestion_factor=self.link.congestion_factor,
            jitter_sigma=self.link.jitter_sigma,
        )

    def send(self, message: Message, on_delivery: Callable[[Message], None]) -> None:
        """Send ``message``; ``on_delivery(message)`` fires after the link delay."""
        message.sent_at = self.sim.now
        self._messages_sent += 1
        if message.src == message.dst:
            # Loopback: same-node worker/server co-location is free.  The
            # delivery events are fire-and-forget, so defer() lets the
            # simulator recycle their Event slots.
            self.sim.defer(0.0, self._deliver, message, on_delivery, False)
            return
        delay = self._link_for(message.src, message.dst).delay_for(
            message.size_bytes, self.rng, message.parallel_streams
        )
        if self.serialize_node_transfers:
            start = max(
                self.sim.now, self._node_busy_until.get(message.src, 0.0)
            )
            finish = start + delay
            self._node_busy_until[message.src] = finish
            delay = finish - self.sim.now
        self.sim.defer(delay, self._deliver, message, on_delivery, True)

    def _deliver(
        self, message: Message, on_delivery: Callable[[Message], None], account: bool
    ) -> None:
        if account:
            self.ledger.record(self.sim.now, message)
            if self.tracer.enabled:
                category = message.kind.category
                self.tracer.count(f"net.bytes.{category}", message.size_bytes)
                self.tracer.count(f"net.messages.{category}")
                self.tracer.observe(
                    "net.transfer_s", self.sim.now - message.sent_at
                )
        self._messages_delivered += 1
        on_delivery(message)

    @property
    def messages_sent(self) -> int:
        """Messages handed to the network so far."""
        return self._messages_sent

    @property
    def messages_delivered(self) -> int:
        """Messages whose delivery callback has fired."""
        return self._messages_delivered

    @property
    def in_flight(self) -> int:
        """Messages sent but not yet delivered."""
        return self._messages_sent - self._messages_delivered

    def __repr__(self) -> str:
        return (
            f"Network(sent={self._messages_sent}, "
            f"delivered={self._messages_delivered}, link={self.link})"
        )
