"""Network model and data-transfer accounting.

Every message in the simulated cluster flows through a :class:`Network`,
which delays delivery by latency plus serialization time and records the
bytes moved in a :class:`TransferLedger`.  The ledger is the data source for
the paper's communication-overhead figures (Fig. 12 and Fig. 13).
"""

from repro.netsim.messages import Message, MessageKind, CONTROL_MESSAGE_BYTES
from repro.netsim.network import Network, LinkModel
from repro.netsim.ledger import TransferLedger, TransferRecord

__all__ = [
    "Message",
    "MessageKind",
    "CONTROL_MESSAGE_BYTES",
    "Network",
    "LinkModel",
    "TransferLedger",
    "TransferRecord",
]
