"""Typed messages exchanged between workers, servers, and the scheduler.

Message kinds mirror the SpecSync protocol (paper Sections IV-V):

* ``PULL_REQUEST`` / ``PULL_RESPONSE`` — worker fetches model parameters.
* ``PUSH`` / ``PUSH_ACK`` — worker sends a gradient update.
* ``NOTIFY`` — worker tells the central scheduler an iteration finished
  (Algorithm 2, worker line 10).
* ``RESYNC`` — scheduler tells a worker to abort and re-pull
  (Algorithm 2, scheduler line 10).

Each kind has a transfer category used for the Fig. 13 breakdown: parameter
traffic (pull), gradient traffic (push), and control traffic (everything the
SpecSync machinery adds).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["MessageKind", "Message", "CONTROL_MESSAGE_BYTES"]

#: Size of a notify / re-sync / ack message on the wire.  These carry only a
#: sender id and a timestamp; the paper stresses they are negligible next to
#: parameter traffic.  64 bytes covers headers + payload for a small RPC.
CONTROL_MESSAGE_BYTES = 64


class MessageKind(enum.Enum):
    """Protocol message types with their transfer-accounting category."""

    PULL_REQUEST = ("pull_request", "control")
    PULL_RESPONSE = ("pull_response", "pull")
    PUSH = ("push", "push")
    PUSH_ACK = ("push_ack", "control")
    NOTIFY = ("notify", "control")
    RESYNC = ("resync", "control")

    def __init__(self, wire_name: str, category: str):
        self.wire_name = wire_name
        #: one of {"pull", "push", "control"} — the Fig. 13 breakdown buckets
        self.category = category


_message_ids = itertools.count()


@dataclass
class Message:
    """One message on the simulated wire.

    ``payload`` is arbitrary (a parameter snapshot, a gradient dict, a worker
    id); ``size_bytes`` is what the transfer ledger accounts, decoupled from
    the in-memory payload so large paper-scale models can be accounted while
    the numeric model stays laptop-sized (see DESIGN.md, fidelity notes).
    """

    kind: MessageKind
    src: str
    dst: str
    size_bytes: float
    payload: Any = None
    sent_at: Optional[float] = None
    #: Number of server shards the transfer fans out over.  A sharded pull
    #: moves ``size_bytes`` in total but serializes only ``size_bytes /
    #: parallel_streams`` on the bottleneck link, so delay divides by this
    #: while accounting does not.
    parallel_streams: int = 1
    msg_id: int = field(default_factory=lambda: next(_message_ids))

    def __post_init__(self):
        if self.size_bytes < 0:
            raise ValueError(f"size_bytes must be >= 0, got {self.size_bytes}")
        if self.parallel_streams < 1:
            raise ValueError(
                f"parallel_streams must be >= 1, got {self.parallel_streams}"
            )

    def __repr__(self) -> str:
        return (
            f"Message({self.kind.wire_name}, {self.src}->{self.dst}, "
            f"{self.size_bytes:.0f}B, id={self.msg_id})"
        )
