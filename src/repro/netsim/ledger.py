"""Data-transfer accounting.

The :class:`TransferLedger` records every message the network delivers and
answers the questions behind the paper's communication figures:

* Fig. 12 — accumulated data transfer as a function of (virtual) time.
* Fig. 13 — total transfer broken down by category (pull / push / control).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.netsim.messages import Message

__all__ = ["TransferRecord", "TransferLedger"]


@dataclass(frozen=True)
class TransferRecord:
    """One accounted transfer: when, what kind, how many bytes."""

    time: float
    kind: str
    category: str
    src: str
    dst: str
    size_bytes: float


class TransferLedger:
    """Append-only record of all network transfers in a run."""

    def __init__(self):
        self._records: List[TransferRecord] = []
        self._times: List[float] = []
        self._cumulative: List[float] = []
        self._total = 0.0
        self._by_category: Dict[str, float] = {}
        self._by_kind: Dict[str, float] = {}

    def record(self, time: float, message: Message) -> None:
        """Account one delivered message at virtual time ``time``."""
        rec = TransferRecord(
            time=time,
            kind=message.kind.wire_name,
            category=message.kind.category,
            src=message.src,
            dst=message.dst,
            size_bytes=message.size_bytes,
        )
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"transfers must be recorded in time order: {time} < {self._times[-1]}"
            )
        self._records.append(rec)
        self._total += rec.size_bytes
        self._times.append(time)
        self._cumulative.append(self._total)
        self._by_category[rec.category] = (
            self._by_category.get(rec.category, 0.0) + rec.size_bytes
        )
        self._by_kind[rec.kind] = self._by_kind.get(rec.kind, 0.0) + rec.size_bytes

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> float:
        """Total bytes moved so far."""
        return self._total

    @property
    def record_count(self) -> int:
        """Number of accounted transfers."""
        return len(self._records)

    def bytes_by_category(self) -> Dict[str, float]:
        """Total bytes per Fig.-13 bucket (pull / push / control)."""
        return dict(self._by_category)

    def bytes_by_kind(self) -> Dict[str, float]:
        """Total bytes per message kind (finer than category)."""
        return dict(self._by_kind)

    def cumulative_at(self, time: float) -> float:
        """Total bytes transferred up to and including virtual time ``time``."""
        idx = bisect.bisect_right(self._times, time)
        return self._cumulative[idx - 1] if idx else 0.0

    def cumulative_series(self, sample_times: List[float]) -> List[Tuple[float, float]]:
        """Sample the accumulated-transfer curve (Fig. 12) at given times."""
        return [(t, self.cumulative_at(t)) for t in sample_times]

    def records(self) -> List[TransferRecord]:
        """A copy of all transfer records, in time order."""
        return list(self._records)

    def control_fraction(self) -> float:
        """Fraction of total bytes that is SpecSync control traffic.

        The paper's claim is that this is negligible; the ablation and
        overhead benches assert it stays well under a percent.
        """
        if self._total == 0:
            return 0.0
        return self._by_category.get("control", 0.0) / self._total

    def __repr__(self) -> str:
        return (
            f"TransferLedger(records={len(self._records)}, "
            f"total={self._total:.3g}B)"
        )
