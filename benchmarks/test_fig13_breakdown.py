"""Bench for Fig. 13 — transfer breakdown for SpecSync-Adaptive.

Shape assertions: parameter traffic (pulls + pushes) dominates; the control
traffic SpecSync adds (notify / re-sync / request / ack messages) is a
negligible share — the property that justifies the centralized scheduler
(paper Section V-A, VI-D).
"""

from benchmarks.conftest import run_once
from repro.experiments import ExperimentScale, run_fig13

SCALE = ExperimentScale.from_env()


def test_fig13_transfer_breakdown(benchmark, archive):
    result = run_once(benchmark, lambda: run_fig13(SCALE))
    archive("fig13_breakdown", result.render())

    for workload, per_cat in result.breakdown.items():
        assert per_cat.get("pull", 0) > 0, f"{workload}: no pull traffic?"
        assert per_cat.get("push", 0) > 0, f"{workload}: no push traffic?"
        # SpecSync restarts add re-pulls, so pull >= push.
        assert per_cat["pull"] >= per_cat["push"] * 0.99

        control_share = result.control_fraction(workload)
        assert control_share < 0.005, (
            f"{workload}: control traffic share {control_share:.3%}"
        )

        by_kind = result.by_kind[workload]
        assert by_kind.get("notify", 0) > 0, f"{workload}: notifies missing"
