"""Bench for Fig. 8 — the headline effectiveness result.

For each Table-I workload, runs Original (ASP), SpecSync-Cherrypick, and
SpecSync-Adaptive on Cluster 1 and regenerates the runtime-to-convergence
comparison.  Shape assertions (paper: up to 2.97x MF / 2.25x CIFAR-10 /
3x ImageNet):

* both SpecSync variants converge, and substantially faster than Original;
* SpecSync-Adaptive lands in the same ballpark as Cherrypick (the paper's
  "the difference is very small").
"""

from benchmarks.conftest import run_once
from repro.experiments import ExperimentScale, run_fig8

SCALE = ExperimentScale.from_env()


def test_fig8_effectiveness(benchmark, archive):
    result = run_once(benchmark, lambda: run_fig8(SCALE))
    archive("fig8_effectiveness", result.render())

    for workload in result.workloads():
        adaptive = result.cell(workload, "adaptive")
        cherry = result.cell(workload, "cherrypick")
        assert adaptive.converged, f"{workload}: adaptive must converge"
        assert cherry.converged, f"{workload}: cherrypick must converge"

        if SCALE is not ExperimentScale.FULL:
            continue
        original = result.cell(workload, "original")
        assert original.converged, f"{workload}: original must converge"

        speedup_adaptive = result.speedup(workload, "adaptive")
        speedup_cherry = result.speedup(workload, "cherrypick")
        # The paper's speedups are 2.25x-3x; require a clear win with
        # slack for seed/substrate variation.
        assert speedup_adaptive > 1.5, (
            f"{workload}: adaptive speedup {speedup_adaptive:.2f}x"
        )
        assert speedup_cherry > 1.5, (
            f"{workload}: cherrypick speedup {speedup_cherry:.2f}x"
        )
        # Adaptive in the same ballpark as cherrypick ("difference is very
        # small" at paper scale; our substrate is noisier per-seed, and a
        # lucky fixed setting can win a single run by ~2x).
        ratio = speedup_adaptive / speedup_cherry
        assert 0.35 < ratio < 4.0, f"{workload}: adaptive/cherry ratio {ratio:.2f}"

        # SpecSync must not compromise training quality (Section VI-B).
        assert adaptive.result.final_loss <= result.targets[workload] * 1.1


def test_fig8_multiseed(benchmark, archive):
    """Seed-averaged Fig. 8 (extension).  Heavy: gated by REPRO_MULTISEED=1
    at full scale; otherwise runs the MF workload only."""
    import os

    from repro.experiments.fig8_multiseed import run_fig8_multiseed
    from repro.workloads.presets import PAPER_WORKLOADS, matrix_factorization_workload

    if SCALE is ExperimentScale.FULL and os.environ.get("REPRO_MULTISEED") == "1":
        workloads = PAPER_WORKLOADS(1)
    else:
        workloads = [matrix_factorization_workload(1)]

    result = run_once(
        benchmark,
        lambda: run_fig8_multiseed(SCALE, seeds=(1, 2, 3), workloads=workloads),
    )
    archive("fig8_multiseed", result.render())

    for variant in result.sweep.variants():
        adaptive = result.sweep.cell(variant, "adaptive")
        assert adaptive.converged_fraction == 1.0, (
            f"{variant}: adaptive failed on some seeds"
        )
        if SCALE is ExperimentScale.FULL:
            speedup = result.speedups(variant)["adaptive"]
            assert speedup is not None and speedup > 1.5, (
                f"{variant}: mean speedup {speedup}"
            )
