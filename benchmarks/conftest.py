"""Shared fixtures for the benchmark harness.

Every bench renders the same rows/series its paper table or figure reports,
prints them, and archives them under ``benchmarks/results/`` so the numbers
in EXPERIMENTS.md can be regenerated and diffed.

Scale control: set ``REPRO_SCALE=smoke`` for a fast wiring check; the
default (full) reproduces the paper's dimensions (40 workers, full
horizons).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def archive(results_dir):
    """Save rendered experiment output and echo it to stdout."""

    def _archive(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n[saved to {path}]")

    return _archive


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    The drivers are minutes-long simulations; statistical repetition is
    meaningless and unaffordable, so a single timed round is recorded.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
