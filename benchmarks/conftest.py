"""Shared fixtures for the benchmark harness.

Every bench renders the same rows/series its paper table or figure reports,
prints them, and archives them under ``benchmarks/results/`` so the numbers
in EXPERIMENTS.md can be regenerated and diffed.

Scale control: set ``REPRO_SCALE=smoke`` for a fast wiring check; the
default (full) reproduces the paper's dimensions (40 workers, full
horizons).
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Bumped when the ``<name>.meta.json`` sidecar layout changes.
ARCHIVE_META_VERSION = 1


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def archive(results_dir):
    """Save rendered experiment output and echo it to stdout.

    Alongside each ``<name>.txt`` a ``<name>.meta.json`` sidecar records
    the wall time from fixture setup to the archive call and the
    ``REPRO_SCALE`` the run used, so archived numbers can be compared
    like-for-like across captures.
    """
    started = time.perf_counter()

    def _archive(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        meta = {
            "schema_version": ARCHIVE_META_VERSION,
            "name": name,
            "wall_time_s": round(time.perf_counter() - started, 6),
            "repro_scale": os.environ.get("REPRO_SCALE", "full"),
        }
        meta_path = results_dir / f"{name}.meta.json"
        with meta_path.open("w", encoding="utf-8") as handle:
            json.dump(meta, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"\n{text}\n[saved to {path}; meta in {meta_path}]")

    return _archive


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    The drivers are minutes-long simulations; statistical repetition is
    meaningless and unaffordable, so a single timed round is recorded.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
