"""Macro performance benchmarks: end-to-end wall-clock runtime throughput.

Not part of the tier-1 suite (the filename is outside the ``test_*.py``
glob); run explicitly::

    REPRO_SCALE=smoke PYTHONPATH=src python -m pytest benchmarks/perf_macro.py -q

Covers the threaded and multi-process backends, which exercise real
locks, queues, and process start-up — the numbers are machine-dependent
(``kind="rate"``), so the compare gate holds them to the generous rate
tolerance.
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.perfbench import bench_payload, render_results, run_benchmarks

REPO_ROOT = pathlib.Path(__file__).parent.parent

MACRO_BENCHES = ["runtime_threaded", "runtime_multiprocess"]


def _emit(results, scale: str) -> None:
    for result in results:
        path = REPO_ROOT / f"BENCH_{result.name}.json"
        with path.open("w", encoding="utf-8") as handle:
            json.dump(bench_payload([result], scale), handle,
                      indent=1, sort_keys=True)
            handle.write("\n")


def test_perf_macro(archive):
    scale = os.environ.get("REPRO_SCALE", "full")
    results = run_benchmarks(MACRO_BENCHES, scale=scale)
    _emit(results, scale)
    assert {r.name for r in results} == set(MACRO_BENCHES)
    for result in results:
        assert result.metrics["total_iterations"].value > 0
    archive("perf_macro", render_results(results))
