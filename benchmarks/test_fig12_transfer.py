"""Bench for Fig. 12 — accumulated data transfer over time.

Shape assertions (paper Section VI-D):

* SpecSync-Adaptive's transfer *rate* stays close to Original's (the
  re-pull + control overhead per unit time is small);
* because Adaptive converges sooner, its total transfer **to convergence**
  is smaller — the paper's CIFAR-10 example saves ~40% (3.17 TB → 2.00 TB).
"""

from benchmarks.conftest import run_once
from repro.experiments import ExperimentScale, run_fig12

SCALE = ExperimentScale.from_env()


def test_fig12_accumulated_transfer(benchmark, archive):
    result = run_once(benchmark, lambda: run_fig12(SCALE))
    archive("fig12_transfer", result.render())

    for workload in result.rate:
        overhead = result.rate_overhead(workload)
        # "very little additional bandwidth": allow a modest rate bump from
        # abort-triggered re-pulls.
        assert overhead < 0.5, f"{workload}: rate overhead {overhead:.0%}"

        if SCALE is not ExperimentScale.FULL:
            continue
        saving = result.transfer_saving(workload)
        assert saving is not None, f"{workload}: both schemes must converge"
        assert saving > 0.15, (
            f"{workload}: transfer saving to convergence only {saving:.0%}"
        )

    for workload, per_scheme in result.series.items():
        for scheme, series in per_scheme.items():
            values = [v for _, v in series]
            assert all(a <= b for a, b in zip(values, values[1:])), (
                f"{workload}/{scheme}: cumulative transfer must be monotone"
            )
