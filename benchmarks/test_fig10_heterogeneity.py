"""Bench for Fig. 10 — robustness under cluster heterogeneity.

Shape assertions (CIFAR-10, Cluster 1 vs Cluster 2):

* SpecSync-Adaptive beats Original on both cluster types;
* the heterogeneous speedup is smaller than the homogeneous one (the
  adaptive tuner's uniform-arrival assumption degrades — paper VI-C).
"""

from benchmarks.conftest import run_once
from repro.experiments import ExperimentScale, run_fig10

SCALE = ExperimentScale.from_env()

HOMOG = "homogeneous (Cluster 1)"
HETERO = "heterogeneous (Cluster 2)"


def test_fig10_heterogeneity(benchmark, archive):
    result = run_once(benchmark, lambda: run_fig10(SCALE))
    archive("fig10_heterogeneity", result.render())

    if SCALE is not ExperimentScale.FULL:
        return
    for kind in (HOMOG, HETERO):
        adaptive_time = result.time_to_target[kind]["adaptive"]
        assert adaptive_time is not None, f"{kind}: adaptive must converge"
        original_time = result.time_to_target[kind]["original"]
        if original_time is not None:
            assert adaptive_time < original_time, (
                f"{kind}: adaptive {adaptive_time} vs original {original_time}"
            )

    homog_speedup = result.speedup(HOMOG)
    hetero_speedup = result.speedup(HETERO)
    assert homog_speedup is not None and homog_speedup > 1.2
    if hetero_speedup is not None:
        # Paper: the heterogeneous gain is smaller than the homogeneous one.
        assert hetero_speedup < homog_speedup * 1.25, (
            f"hetero {hetero_speedup:.2f}x vs homog {homog_speedup:.2f}x"
        )
