"""Ablation benches for SpecSync's design choices (DESIGN.md Section 5)."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import ExperimentScale
from repro.experiments.ablations import (
    run_ablation_abort_budget,
    run_ablation_broadcast,
    run_ablation_sensitivity,
    run_ablation_specsync_ssp,
)

SCALE = ExperimentScale.from_env()


def test_ablation_broadcast(benchmark, archive):
    """Centralized scheduler vs all-to-all broadcast (paper Section V-A)."""
    result = run_once(benchmark, lambda: run_ablation_broadcast(SCALE))
    archive("ablation_broadcast", result.render())

    assert result.notifies_sent > 0
    # Broadcasting each notify to m−1 peers multiplies notify traffic by
    # exactly m−1 (modulo in-flight messages at the horizon).
    assert result.broadcast_notify_bytes > result.measured_notify_bytes
    m = result.num_workers
    assert result.notify_amplification == pytest.approx(m - 1, rel=0.05)
    # Total control traffic also includes pull requests and acks, which
    # broadcasting leaves unchanged — the overall blow-up is still large.
    assert result.total_amplification > 5.0


def test_ablation_specsync_on_ssp(benchmark, archive):
    """Composability (paper Section IV-A): SpecSync improves SSP too."""
    result = run_once(benchmark, lambda: run_ablation_specsync_ssp(SCALE))
    archive("ablation_specsync_ssp", result.render())

    composed = [k for k in result.time_to_target if k.startswith("specsync-adaptive+ssp")]
    assert composed, "composed scheme missing"
    composed_key = composed[0]
    ssp_key = [k for k in result.time_to_target if k.startswith("ssp")][0]

    composed_time = result.time_to_target[composed_key]
    ssp_time = result.time_to_target[ssp_key]
    assert composed_time is not None, "SpecSync+SSP must converge"
    if SCALE is ExperimentScale.FULL and ssp_time is not None:
        assert composed_time < ssp_time, (
            f"SpecSync+SSP {composed_time}s vs SSP {ssp_time}s"
        )
    # Freshness mechanism: composition reduces staleness below plain SSP.
    assert result.staleness[composed_key] < result.staleness[ssp_key]


def test_ablation_abort_budget(benchmark, archive):
    """Algorithm 2 allows one re-sync per iteration; sweep the cap."""
    result = run_once(benchmark, lambda: run_ablation_abort_budget(SCALE))
    archive("ablation_abort_budget", result.render())

    assert result.aborts[0] == 0, "budget 0 must disable aborts"
    assert result.aborts[1] > 0
    assert result.aborts[2] >= result.aborts[1]
    if SCALE is ExperimentScale.FULL:
        time_without = result.time_to_target[0]
        time_with = result.time_to_target[1]
        assert time_with is not None
        if time_without is not None:
            assert time_with < time_without, (
                "speculative aborts must speed up convergence"
            )


def test_ablation_hyperparameter_sensitivity(benchmark, archive):
    """Fixed hyperparameters far from the tuned point lose the benefit."""
    result = run_once(benchmark, lambda: run_ablation_sensitivity(SCALE))
    archive("ablation_sensitivity", result.render())

    adaptive_time = result.time_to_target["adaptive (Algorithm 1)"]
    assert adaptive_time is not None
    if SCALE is ExperimentScale.FULL:
        never = result.time_to_target[
            "fixed: window T/50, rate 0.9 (never aborts)"
        ]
        # The never-abort variant is ASP in disguise: adaptive must win.
        if never is not None:
            assert adaptive_time < never


def test_ablation_optimizer_robustness(benchmark, archive):
    """Extension: the freshness mechanism is server-optimizer-agnostic."""
    from repro.experiments.ablations import run_ablation_optimizer

    result = run_once(benchmark, lambda: run_ablation_optimizer(SCALE))
    archive("ablation_optimizer", result.render())

    # SpecSync reduces staleness under both optimizers by a similar margin.
    for optimizer in ("sgd", "adagrad"):
        asp = result.staleness[f"{optimizer}+asp"]
        spec = result.staleness[f"{optimizer}+specsync"]
        assert spec < asp * 0.9, (
            f"{optimizer}: staleness {spec:.1f} vs {asp:.1f}"
        )


def test_ablation_failure_injection(benchmark, archive):
    """Extension: a scripted fail-slow node mid-training."""
    from repro.experiments.ablations import run_ablation_failure_injection

    result = run_once(benchmark, lambda: run_ablation_failure_injection(SCALE))
    archive("ablation_failure_injection", result.render())

    # The victim completes fewer iterations but the cluster keeps going,
    # and SpecSync still converges despite the fault.
    assert result.victim_iterations["specsync"] > 0
    if SCALE is ExperimentScale.FULL:
        assert result.time_to_target["specsync"] is not None
        asp_time = result.time_to_target["asp"]
        if asp_time is not None:
            assert result.time_to_target["specsync"] < asp_time


def test_ablation_orthogonality(benchmark, archive):
    """Related-work combination: staleness-aware SGD + SpecSync."""
    from repro.experiments.ablations import run_ablation_orthogonality

    result = run_once(benchmark, lambda: run_ablation_orthogonality(SCALE))
    archive("ablation_orthogonality", result.render())

    if SCALE is not ExperimentScale.FULL:
        return
    spec = result.time_to_target["specsync + plain sgd"]
    combined = result.time_to_target["specsync + staleness-aware"]
    asp = result.time_to_target["asp + plain sgd"]
    assert spec is not None
    # SpecSync still beats plain ASP when combined with staleness-aware
    # rates, and the combination converges.
    assert combined is not None, "combined configuration must converge"
    if asp is not None:
        assert spec < asp
