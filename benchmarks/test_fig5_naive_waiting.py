"""Bench for Fig. 5 — naïve waiting with fixed pull delays.

Checks the paper's qualitative claims:

* a well-chosen small delay beats the Original (0-delay) scheme;
* beyond the optimum, larger delays deteriorate — naive waiting is only as
  good as its hand-picked delay (the motivation for SpecSync);
* the mechanism: deferring pulls strictly reduces average staleness.

The MF panel uses the paper's exact {0,1,3,5}s grid and shows the paper's
exact ordering (1s best, 3s worse, 5s worse still).  The CIFAR-10 grid is
extended to {…,8,12}s because our substrate's optimum falls near 5 s
(documented deviation, EXPERIMENTS.md) — the crossover shape is identical,
shifted right.
"""

from benchmarks.conftest import run_once
from repro.experiments import ExperimentScale, run_fig5

SCALE = ExperimentScale.from_env()


def test_fig5_naive_waiting(benchmark, archive):
    result = run_once(benchmark, lambda: run_fig5(SCALE))
    archive("fig5_naive_waiting", result.render())

    for workload in ("cifar10", "mf"):
        staleness = result.staleness[workload]
        grid = sorted(staleness)
        # Mechanism: longer waits -> fresher snapshots at computation.
        assert staleness[grid[-1]] < staleness[grid[1]] < staleness[0.0]

    if SCALE is not ExperimentScale.FULL:
        return

    # MF: the paper's exact ordering on the paper's exact grid.
    mf = result.time_to_target["mf"]
    assert mf[1.0] is not None
    if mf[0.0] is not None:
        assert mf[1.0] < mf[0.0], "MF: 1s delay should beat Original"
    if mf[3.0] is not None:
        assert mf[1.0] < mf[3.0], "MF: 3s delay should lose to 1s"
    if mf[5.0] is not None:
        assert mf[1.0] < mf[5.0], "MF: 5s delay should lose to 1s"
    assert result.best_delay("mf") == 1.0

    # CIFAR-10: finite interior optimum, deterioration past it.
    cifar = result.time_to_target["cifar10"]
    best = result.best_delay("cifar10")
    largest = max(cifar)
    assert 0.0 < best < largest, f"CIFAR optimum {best}s should be interior"
    if cifar[0.0] is not None and cifar[best] is not None:
        assert cifar[best] < cifar[0.0]
    if cifar[largest] is not None and cifar[best] is not None:
        assert cifar[best] < cifar[largest], (
            "CIFAR: waiting past the optimum must deteriorate"
        )
