"""Bench for Fig. 11 — scalability with cluster size (20 / 30 / 40 workers).

Shape assertions, per the paper's two scenarios on CIFAR-10:

* target-accuracy: SpecSync-Adaptive outruns Original at every size;
* fixed-budget: Adaptive's loss at the budget is lower at every size;
* the advantage does not shrink as the cluster grows (the paper reports it
  *increasing* with size).
"""

from benchmarks.conftest import run_once
from repro.experiments import ExperimentScale, run_fig11

SCALE = ExperimentScale.from_env()


def test_fig11_scalability(benchmark, archive):
    result = run_once(benchmark, lambda: run_fig11(SCALE))
    archive("fig11_scalability", result.render())

    sizes = sorted(result.time_to_target)
    for size in sizes:
        orig_loss = result.loss_at_budget[size]["original"]
        spec_loss = result.loss_at_budget[size]["adaptive"]
        # Adaptive never does materially worse at the budget; at small
        # sizes (low staleness) the two can tie.
        assert spec_loss < orig_loss * 1.02, (
            f"{size} workers: adaptive loss {spec_loss:.3f} "
            f"vs original {orig_loss:.3f} at budget"
        )

    if SCALE is not ExperimentScale.FULL:
        return
    largest = sizes[-1]
    for size in sizes:
        speedup = result.speedup(size)
        if speedup is not None:
            assert speedup >= 0.95, f"{size} workers: speedup {speedup:.2f}x"
    largest_speedup = result.speedup(largest)
    assert largest_speedup is not None and largest_speedup > 1.5, (
        f"largest cluster speedup {largest_speedup}"
    )
    # The paper's headline: the advantage grows with cluster size — both
    # the fixed-budget improvement and the strict win at the largest size.
    assert result.loss_improvement(largest) > 0, "no gain at 40 workers"
    assert result.loss_improvement(largest) >= (
        result.loss_improvement(sizes[0]) - 0.005
    ), (
        f"improvement shrank: {result.loss_improvement(sizes[0]):.1%} -> "
        f"{result.loss_improvement(largest):.1%}"
    )
