"""Bench for Fig. 3 — PAP distribution per 1-second interval.

Checks the paper's Section-III observations:

* PAP arrivals are roughly uniform across intervals (no interval's median
  dwarfs the others);
* with 40 workers on CIFAR-10, the median number of pushes uncovered
  within two seconds of a pull exceeds 6.
"""

from benchmarks.conftest import run_once
from repro.experiments import ExperimentScale, run_fig3

SCALE = ExperimentScale.from_env()


def test_fig3_pap_distribution(benchmark, archive):
    result = run_once(benchmark, lambda: run_fig3(SCALE))
    archive("fig3_pap", result.render())

    assert set(result.boxes) == {"cifar10", "mf"}
    for workload, boxes in result.boxes.items():
        assert boxes, f"no PAP samples for {workload}"
        for box in boxes.values():
            assert box.p5 <= box.median <= box.p95

    if SCALE is ExperimentScale.FULL:
        # Paper: "the median is over 6" within 2 seconds (CIFAR-10, m=40);
        # the expected count is (m-1)*2s/14s ≈ 5.6, and our substrate's
        # median lands at ~5 (documented deviation in EXPERIMENTS.md).
        assert result.median_pap_2s["cifar10"] >= 4.5
        # Rough per-interval uniformity: total PAP over an iteration is
        # ~m-1; each 1s interval of a 14s iteration carries a few pushes.
        medians = [b.median for b in result.boxes["cifar10"].values()]
        assert max(medians) > 0
