"""Micro performance benchmarks: engine, scheduler, and netsim throughput.

Not part of the tier-1 suite (the filename is outside the ``test_*.py``
glob); run explicitly, typically at smoke scale in CI::

    REPRO_SCALE=smoke PYTHONPATH=src python -m pytest benchmarks/perf_micro.py -q

Each bench writes a schema-versioned ``BENCH_<name>.json`` at the repo
root for ``repro bench --compare`` and archives the rendered table under
``benchmarks/results/``.
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.perfbench import bench_payload, render_results, run_benchmarks

REPO_ROOT = pathlib.Path(__file__).parent.parent

MICRO_BENCHES = ["engine", "scheduler", "netsim"]


def _scale() -> str:
    return os.environ.get("REPRO_SCALE", "full")


def _emit(results, scale: str) -> None:
    for result in results:
        path = REPO_ROOT / f"BENCH_{result.name}.json"
        with path.open("w", encoding="utf-8") as handle:
            json.dump(bench_payload([result], scale), handle,
                      indent=1, sort_keys=True)
            handle.write("\n")


def test_perf_micro(archive):
    scale = _scale()
    results = run_benchmarks(MICRO_BENCHES, scale=scale)
    _emit(results, scale)
    assert {r.name for r in results} == set(MICRO_BENCHES)
    for result in results:
        assert result.metrics["wall_s"].value > 0
    archive("perf_micro", render_results(results))
