"""Bench for Fig. 9 — loss versus iterations.

Shape assertions: SpecSync needs *fewer* cluster-wide iterations to reach
the target (the paper reports up to 58% fewer), because each (possibly
restarted) iteration computes on fresher parameters.
"""

from benchmarks.conftest import run_once
from repro.experiments import ExperimentScale, run_fig9

SCALE = ExperimentScale.from_env()


def test_fig9_iterations_to_convergence(benchmark, archive):
    result = run_once(benchmark, lambda: run_fig9(SCALE))
    archive("fig9_iterations", result.render())

    if SCALE is not ExperimentScale.FULL:
        return
    reductions = []
    for workload, per_scheme in result.iterations_to_target.items():
        assert per_scheme["adaptive"] is not None, f"{workload}: must converge"
        reduction = result.iteration_reduction(workload)
        assert reduction is not None
        assert reduction > 0.15, (
            f"{workload}: iteration reduction only {reduction:.0%}"
        )
        reductions.append(reduction)
    # "up to 58% fewer iterations": the best workload should save a lot.
    assert max(reductions) > 0.4, f"best reduction {max(reductions):.0%}"
