"""Bench for Table II — hyperparameter tuning cost.

Restates the paper's grid-search cost structure (trial counts × per-trial
EC2 hours) and *measures* the Adaptive tuner's total Algorithm-1 wall time
over a full training run.  Shape assertion: the adaptive cost is orders of
magnitude below even a single grid trial.
"""

from benchmarks.conftest import run_once
from repro.experiments import ExperimentScale, run_table2
from repro.experiments.table2_tuning_cost import PAPER_TABLE2

SCALE = ExperimentScale.from_env()


def test_table2_tuning_cost(benchmark, archive):
    result = run_once(benchmark, lambda: run_table2(SCALE))
    archive("table2_tuning_cost", result.render())

    assert len(result.rows) == 3
    for row in result.rows:
        paper = PAPER_TABLE2[row.workload]
        assert row.time_trials == int(paper["time_trials"])
        assert row.rate_trials == int(paper["rate_trials"])

        # Adaptive tuned at least once and stayed essentially free:
        # a grid *trial* costs hours; Algorithm 1 costs milliseconds.
        assert row.adaptive_epochs_tuned > 0, f"{row.workload}: never tuned"
        assert row.adaptive_tuning_wall_s < 60.0, (
            f"{row.workload}: adaptive tuning took {row.adaptive_tuning_wall_s}s"
        )
        trial_seconds = row.trial_hours * 3600.0
        assert row.adaptive_tuning_wall_s < trial_seconds / 100.0
