"""Bench for Table I — workload characterization.

Regenerates the table and checks the measured iteration times land on the
paper's 3 s / 14 s / 70 s column.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import ExperimentScale, run_table1

SCALE = ExperimentScale.from_env()


def test_table1_workload_characterization(benchmark, archive):
    result = run_once(benchmark, lambda: run_table1(SCALE))
    archive("table1", result.render())

    assert len(result.rows) == 3
    by_name = {row.workload: row for row in result.rows}
    assert by_name["mf"].num_parameters == 4_200_000
    assert by_name["cifar10"].num_parameters == 2_500_000
    assert by_name["imagenet"].num_parameters == 5_900_000
    for row in result.rows:
        assert row.measured_iteration_time_s == pytest.approx(
            row.paper_iteration_time_s, rel=0.2
        ), f"{row.workload}: measured {row.measured_iteration_time_s}"
