"""Legacy setup shim for environments without PEP-517 wheel support.

``pip install -e .`` (with the ``wheel`` package available) reads
pyproject.toml; on minimal offline machines ``python setup.py develop``
works through this shim, including the ``repro`` console script.
"""

from setuptools import setup

setup(
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
