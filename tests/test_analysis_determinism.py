"""Fixture tests for the determinism rule pack.

Each known-bad snippet fires its rule exactly once; the matching known-good
snippet stays silent; a suppression comment downgrades the bad one.
"""

import textwrap

import pytest

from repro.analysis import lint_source

ZONE = "repro.events.fixture"


def unsuppressed(source, module=ZONE):
    return [f for f in lint_source(source, module=module) if not f.suppressed]


def only_rule(source, rule_id, module=ZONE):
    findings = unsuppressed(source, module=module)
    assert [f.rule_id for f in findings] == [rule_id], findings
    return findings[0]


# ----------------------------------------------------------------------
# DET-WALLCLOCK
# ----------------------------------------------------------------------
def test_wallclock_direct_call_fires_once():
    finding = only_rule(
        "import time\n\ndef f():\n    return time.monotonic()\n",
        "DET-WALLCLOCK",
    )
    assert finding.line == 4
    assert "time.monotonic" in finding.message


def test_wallclock_resolves_import_aliases():
    only_rule(
        "import time as _t\n\ndef f():\n    return _t.perf_counter()\n",
        "DET-WALLCLOCK",
    )
    only_rule(
        "from datetime import datetime\n\ndef f():\n    return datetime.now()\n",
        "DET-WALLCLOCK",
    )


def test_wallclock_allows_virtual_clock_use():
    assert unsuppressed(
        "def f(sim):\n    return sim.now\n"
    ) == []


@pytest.mark.parametrize(
    "package",
    ["repro.core.x", "repro.sync.x", "repro.ps.x", "repro.netsim.x",
     "repro.obs.x"],
)
def test_wallclock_covers_every_zone_package(package):
    only_rule(
        "import time\n\ndef f():\n    return time.time()\n",
        "DET-WALLCLOCK",
        module=package,
    )


def test_wallclock_exempts_runtime_and_ml():
    bad = "import time\n\ndef f():\n    return time.time()\n"
    assert unsuppressed(bad, module="repro.runtime.threaded") == []
    assert unsuppressed(bad, module="repro.ml.models.base") == []


# ----------------------------------------------------------------------
# DET-GLOBALRNG
# ----------------------------------------------------------------------
def test_global_rng_numpy_alias_fires_once():
    finding = only_rule(
        "import numpy as np\n\ndef f():\n    return np.random.default_rng()\n",
        "DET-GLOBALRNG",
    )
    assert "numpy.random.default_rng" in finding.message


def test_global_rng_stdlib_random_fires():
    only_rule(
        "import random\n\ndef f():\n    return random.random()\n",
        "DET-GLOBALRNG",
    )


def test_global_rng_allows_stream_generators():
    assert (
        unsuppressed(
            "def f(rng):\n    return rng.normal()\n"
        )
        == []
    )


def test_global_rng_suppression():
    source = (
        "import numpy as np\n\ndef f():\n"
        "    return np.random.default_rng()  # repro: allow[DET-GLOBALRNG] fixture\n"
    )
    assert unsuppressed(source) == []


# ----------------------------------------------------------------------
# DET-SET-ITER
# ----------------------------------------------------------------------
def test_set_iteration_fires_once():
    finding = only_rule(
        "def f(xs):\n    for x in set(xs):\n        print(x)\n",
        "DET-SET-ITER",
    )
    assert finding.line == 2


def test_set_literal_and_comprehension_iteration_fire():
    only_rule("def f():\n    for x in {1, 2}:\n        pass\n", "DET-SET-ITER")
    only_rule(
        "def f(xs):\n    return [x for x in {x for x in xs}]\n",
        "DET-SET-ITER",
    )


def test_set_iteration_through_list_launder_fires():
    only_rule(
        "def f(xs):\n    for x in list(set(xs)):\n        pass\n",
        "DET-SET-ITER",
    )


def test_sorted_set_iteration_is_clean():
    assert unsuppressed(
        "def f(xs):\n    for x in sorted(set(xs)):\n        pass\n"
    ) == []


def test_set_membership_test_is_clean():
    assert unsuppressed(
        "def f(xs, y):\n    return y in set(xs)\n"
    ) == []


# ----------------------------------------------------------------------
# DET-MUTABLE-DEFAULT (repo-wide)
# ----------------------------------------------------------------------
def test_mutable_default_fires_everywhere():
    finding = only_rule(
        "def f(xs=[]):\n    return xs\n",
        "DET-MUTABLE-DEFAULT",
        module="repro.experiments.fixture",
    )
    assert "'xs'" in finding.message


def test_mutable_default_call_and_kwonly_forms():
    only_rule(
        "def f(*, acc=dict()):\n    return acc\n",
        "DET-MUTABLE-DEFAULT",
        module="repro.utils.fixture",
    )


def test_none_default_is_clean():
    assert unsuppressed(
        "def f(xs=None):\n    return xs or []\n",
        module="repro.utils.fixture",
    ) == []


# ----------------------------------------------------------------------
# DET-OPTIONAL-NONE (repo-wide)
# ----------------------------------------------------------------------
def test_implicit_optional_parameter_fires_once():
    finding = only_rule(
        "def f(x: int = None):\n    return x\n",
        "DET-OPTIONAL-NONE",
        module="repro.metrics.fixture",
    )
    assert "'x'" in finding.message


def test_implicit_optional_annotated_attribute_fires():
    source = textwrap.dedent(
        """\
        class C:
            def __init__(self):
                self.engine: "Engine" = None
        """
    )
    only_rule(source, "DET-OPTIONAL-NONE", module="repro.metrics.fixture")


@pytest.mark.parametrize(
    "annotation",
    [
        "Optional[int]",
        "typing.Optional[int]",
        '"Optional[int]"',
        "Union[int, None]",
        "Any",
    ],
)
def test_optional_annotations_are_clean(annotation):
    source = f"def f(x: {annotation} = None):\n    return x\n"
    assert unsuppressed(source, module="repro.metrics.fixture") == []


def test_pipe_none_annotation_is_clean():
    assert unsuppressed(
        "def f(x: int | None = None):\n    return x\n",
        module="repro.metrics.fixture",
    ) == []
