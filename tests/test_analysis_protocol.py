"""Fixture tests for the protocol-exhaustiveness rule pack."""

import textwrap

from repro.analysis import LintEngine, lint_source
from repro.analysis.engine import module_from_source

GOOD_KINDS = textwrap.dedent(
    """\
    import enum

    class MessageKind(enum.Enum):
        PULL = ("pull", "pull")
        PUSH = ("push", "push")

        def __init__(self, wire_name, category):
            self.wire_name = wire_name
            self.category = category
    """
)

USER_MODULE = textwrap.dedent(
    """\
    from repro.netsim.messages import MessageKind

    def handle(kind):
        return kind in (MessageKind.PULL, MessageKind.PUSH)
    """
)


def unsuppressed(source, module="repro.netsim.fixture"):
    return [f for f in lint_source(source, module=module) if not f.suppressed]


def project_findings(*sources_and_names):
    modules = [
        module_from_source(src, module=name, path=f"<{name}>")
        for src, name in sources_and_names
    ]
    return [
        f for f in LintEngine().lint_modules(modules) if not f.suppressed
    ]


# ----------------------------------------------------------------------
# PROTO-CATEGORY
# ----------------------------------------------------------------------
def test_bad_category_fires_once():
    bad = GOOD_KINDS.replace('("push", "push")', '("push", "gradient")')
    findings = [
        f for f in project_findings((bad, "repro.netsim.fixture"), (USER_MODULE, "repro.ps.fixture"))
        if f.rule_id == "PROTO-CATEGORY"
    ]
    assert len(findings) == 1
    assert "'gradient'" in findings[0].message


def test_member_without_tuple_fires():
    bad = GOOD_KINDS.replace('("push", "push")', '"push"')
    findings = [
        f for f in project_findings((bad, "repro.netsim.fixture"), (USER_MODULE, "repro.ps.fixture"))
        if f.rule_id == "PROTO-CATEGORY"
    ]
    assert len(findings) == 1
    assert "2-tuple" in findings[0].message


def test_category_suppression_silences():
    bad = GOOD_KINDS.replace(
        '("push", "gradient")', '("push", "gradient")'
    ).replace(
        'PUSH = ("push", "push")',
        'PUSH = ("push", "gradient")  # repro: allow[PROTO-CATEGORY] fixture',
    )
    findings = [
        f for f in project_findings((bad, "repro.netsim.fixture"), (USER_MODULE, "repro.ps.fixture"))
        if f.rule_id == "PROTO-CATEGORY"
    ]
    assert findings == []


# ----------------------------------------------------------------------
# PROTO-UNHANDLED
# ----------------------------------------------------------------------
def test_unreferenced_kind_fires_once():
    kinds = GOOD_KINDS.replace(
        'PUSH = ("push", "push")',
        'PUSH = ("push", "push")\n    EVICT = ("evict", "control")',
    )
    findings = [
        f for f in project_findings((kinds, "repro.netsim.fixture"), (USER_MODULE, "repro.ps.fixture"))
        if f.rule_id == "PROTO-UNHANDLED"
    ]
    assert len(findings) == 1
    assert "MessageKind.EVICT" in findings[0].message


def test_all_kinds_referenced_is_clean():
    findings = [
        f for f in project_findings((GOOD_KINDS, "repro.netsim.fixture"), (USER_MODULE, "repro.ps.fixture"))
        if f.rule_id == "PROTO-UNHANDLED"
    ]
    assert findings == []


# ----------------------------------------------------------------------
# PROTO-SIZE
# ----------------------------------------------------------------------
def test_message_without_size_bytes_fires_once():
    source = textwrap.dedent(
        """\
        from repro.netsim.messages import Message, MessageKind

        def send(net):
            net.send(Message(kind=MessageKind.PULL, src="w", dst="s"))
        """
    )
    findings = [
        f for f in unsuppressed(source, module="repro.ps.fixture")
        if f.rule_id == "PROTO-SIZE"
    ]
    assert len(findings) == 1


def test_message_with_size_bytes_is_clean():
    source = textwrap.dedent(
        """\
        from repro.netsim.messages import Message, MessageKind

        def send(net):
            net.send(
                Message(kind=MessageKind.PULL, src="w", dst="s", size_bytes=64)
            )
        """
    )
    assert [
        f for f in unsuppressed(source, module="repro.ps.fixture")
        if f.rule_id == "PROTO-SIZE"
    ] == []


def test_message_with_full_positional_prefix_is_clean():
    source = textwrap.dedent(
        """\
        from repro.netsim.messages import Message, MessageKind

        def send(net):
            net.send(Message(MessageKind.PULL, "w", "s", 64.0))
        """
    )
    assert [
        f for f in unsuppressed(source, module="repro.ps.fixture")
        if f.rule_id == "PROTO-SIZE"
    ] == []


# ----------------------------------------------------------------------
# PROTO-WIRE-TAG
# ----------------------------------------------------------------------
def test_unhandled_wire_tag_fires_once():
    source = textwrap.dedent(
        """\
        def worker(request_queue):
            request_queue.put(("evict", 3), timeout=1.0)

        def server(message):
            kind = message[0]
            if kind == "pull":
                return "ok"
        """
    )
    findings = [
        f for f in unsuppressed(source, module="repro.runtime.fixture")
        if f.rule_id == "PROTO-WIRE-TAG"
    ]
    assert len(findings) == 1
    assert "'evict'" in findings[0].message


def test_handled_wire_tag_is_clean():
    source = textwrap.dedent(
        """\
        def worker(request_queue):
            request_queue.put(("pull", 3), timeout=1.0)

        def server(message):
            kind = message[0]
            if kind == "pull":
                return "ok"
        """
    )
    assert [
        f for f in unsuppressed(source, module="repro.runtime.fixture")
        if f.rule_id == "PROTO-WIRE-TAG"
    ] == []


# ----------------------------------------------------------------------
# The real protocol layer passes all four rules
# ----------------------------------------------------------------------
def test_real_protocol_modules_are_clean():
    import repro.core.specsync as specsync
    import repro.netsim.messages as messages
    import repro.ps.engine as engine
    import repro.runtime.multiprocess as multiprocess
    from repro.analysis.engine import load_module

    modules = [
        load_module(m.__file__)
        for m in (messages, engine, specsync, multiprocess)
    ]
    findings = [
        f
        for f in LintEngine().lint_modules(modules)
        if f.rule_id.startswith("PROTO-") and not f.suppressed
    ]
    assert findings == []
