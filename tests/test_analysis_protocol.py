"""Fixture tests for the protocol-exhaustiveness rule pack."""

import textwrap

from repro.analysis import LintEngine, lint_source
from repro.analysis.engine import module_from_source

GOOD_KINDS = textwrap.dedent(
    """\
    import enum

    class MessageKind(enum.Enum):
        PULL = ("pull", "pull")
        PUSH = ("push", "push")

        def __init__(self, wire_name, category):
            self.wire_name = wire_name
            self.category = category
    """
)

USER_MODULE = textwrap.dedent(
    """\
    from repro.netsim.messages import MessageKind

    def handle(kind):
        return kind in (MessageKind.PULL, MessageKind.PUSH)
    """
)


def unsuppressed(source, module="repro.netsim.fixture"):
    return [f for f in lint_source(source, module=module) if not f.suppressed]


def project_findings(*sources_and_names):
    modules = [
        module_from_source(src, module=name, path=f"<{name}>")
        for src, name in sources_and_names
    ]
    return [
        f for f in LintEngine().lint_modules(modules) if not f.suppressed
    ]


# ----------------------------------------------------------------------
# PROTO-CATEGORY
# ----------------------------------------------------------------------
def test_bad_category_fires_once():
    bad = GOOD_KINDS.replace('("push", "push")', '("push", "gradient")')
    findings = [
        f for f in project_findings((bad, "repro.netsim.fixture"), (USER_MODULE, "repro.ps.fixture"))
        if f.rule_id == "PROTO-CATEGORY"
    ]
    assert len(findings) == 1
    assert "'gradient'" in findings[0].message


def test_member_without_tuple_fires():
    bad = GOOD_KINDS.replace('("push", "push")', '"push"')
    findings = [
        f for f in project_findings((bad, "repro.netsim.fixture"), (USER_MODULE, "repro.ps.fixture"))
        if f.rule_id == "PROTO-CATEGORY"
    ]
    assert len(findings) == 1
    assert "2-tuple" in findings[0].message


def test_category_suppression_silences():
    bad = GOOD_KINDS.replace(
        '("push", "gradient")', '("push", "gradient")'
    ).replace(
        'PUSH = ("push", "push")',
        'PUSH = ("push", "gradient")  # repro: allow[PROTO-CATEGORY] fixture',
    )
    findings = [
        f for f in project_findings((bad, "repro.netsim.fixture"), (USER_MODULE, "repro.ps.fixture"))
        if f.rule_id == "PROTO-CATEGORY"
    ]
    assert findings == []


# ----------------------------------------------------------------------
# PROTO-UNHANDLED
# ----------------------------------------------------------------------
def test_unreferenced_kind_fires_once():
    kinds = GOOD_KINDS.replace(
        'PUSH = ("push", "push")',
        'PUSH = ("push", "push")\n    EVICT = ("evict", "control")',
    )
    findings = [
        f for f in project_findings((kinds, "repro.netsim.fixture"), (USER_MODULE, "repro.ps.fixture"))
        if f.rule_id == "PROTO-UNHANDLED"
    ]
    assert len(findings) == 1
    assert "MessageKind.EVICT" in findings[0].message


def test_all_kinds_referenced_is_clean():
    findings = [
        f for f in project_findings((GOOD_KINDS, "repro.netsim.fixture"), (USER_MODULE, "repro.ps.fixture"))
        if f.rule_id == "PROTO-UNHANDLED"
    ]
    assert findings == []


# ----------------------------------------------------------------------
# PROTO-SIZE
# ----------------------------------------------------------------------
def test_message_without_size_bytes_fires_once():
    source = textwrap.dedent(
        """\
        from repro.netsim.messages import Message, MessageKind

        def send(net):
            net.send(Message(kind=MessageKind.PULL, src="w", dst="s"))
        """
    )
    findings = [
        f for f in unsuppressed(source, module="repro.ps.fixture")
        if f.rule_id == "PROTO-SIZE"
    ]
    assert len(findings) == 1


def test_message_with_size_bytes_is_clean():
    source = textwrap.dedent(
        """\
        from repro.netsim.messages import Message, MessageKind

        def send(net):
            net.send(
                Message(kind=MessageKind.PULL, src="w", dst="s", size_bytes=64)
            )
        """
    )
    assert [
        f for f in unsuppressed(source, module="repro.ps.fixture")
        if f.rule_id == "PROTO-SIZE"
    ] == []


def test_message_with_full_positional_prefix_is_clean():
    source = textwrap.dedent(
        """\
        from repro.netsim.messages import Message, MessageKind

        def send(net):
            net.send(Message(MessageKind.PULL, "w", "s", 64.0))
        """
    )
    assert [
        f for f in unsuppressed(source, module="repro.ps.fixture")
        if f.rule_id == "PROTO-SIZE"
    ] == []


# ----------------------------------------------------------------------
# PROTO-WIRE-TAG
# ----------------------------------------------------------------------
def test_unhandled_wire_tag_fires_once():
    source = textwrap.dedent(
        """\
        def worker(request_queue):
            request_queue.put(("evict", 3), timeout=1.0)

        def server(message):
            kind = message[0]
            if kind == "pull":
                return "ok"
        """
    )
    findings = [
        f for f in unsuppressed(source, module="repro.runtime.fixture")
        if f.rule_id == "PROTO-WIRE-TAG"
    ]
    assert len(findings) == 1
    assert "'evict'" in findings[0].message


def test_handled_wire_tag_is_clean():
    source = textwrap.dedent(
        """\
        def worker(request_queue):
            request_queue.put(("pull", 3), timeout=1.0)

        def server(message):
            kind = message[0]
            if kind == "pull":
                return "ok"
        """
    )
    assert [
        f for f in unsuppressed(source, module="repro.runtime.fixture")
        if f.rule_id == "PROTO-WIRE-TAG"
    ] == []


# ----------------------------------------------------------------------
# PROTO-MODEL-ALPHABET
# ----------------------------------------------------------------------
GOOD_ALPHABET = textwrap.dedent(
    """\
    from repro.netsim.messages import MessageKind

    MODEL_ALPHABET = (
        MessageKind.PULL,
        MessageKind.PUSH,
    )
    """
)


def alphabet_findings(alphabet_source, kinds_source=GOOD_KINDS):
    return [
        f
        for f in project_findings(
            (kinds_source, "repro.netsim.fixture"),
            (alphabet_source, "repro.analysis.model.fixture"),
        )
        if f.rule_id == "PROTO-MODEL-ALPHABET"
    ]


def test_alphabet_in_sync_is_clean():
    assert alphabet_findings(GOOD_ALPHABET) == []


def test_missing_enum_member_fires():
    incomplete = GOOD_ALPHABET.replace("    MessageKind.PUSH,\n", "")
    findings = alphabet_findings(incomplete)
    assert len(findings) == 1
    assert "MessageKind.PUSH is missing" in findings[0].message


def test_unknown_alphabet_entry_fires():
    extra = GOOD_ALPHABET.replace(
        "MessageKind.PUSH,", "MessageKind.PUSH,\n    MessageKind.EVICT,"
    )
    findings = alphabet_findings(extra)
    assert len(findings) == 1
    assert "MessageKind.EVICT" in findings[0].message
    assert "not a member" in findings[0].message


def test_non_attribute_entry_fires():
    opaque = GOOD_ALPHABET.replace("MessageKind.PUSH,", '"push",')
    findings = alphabet_findings(opaque)
    # one for the opaque entry, one for PUSH now uncovered
    assert len(findings) == 2
    assert any("statically checkable" in f.message for f in findings)


def test_alphabet_without_enum_in_batch_is_silent():
    findings = [
        f
        for f in project_findings((GOOD_ALPHABET, "repro.analysis.model.fixture"))
        if f.rule_id == "PROTO-MODEL-ALPHABET"
    ]
    assert findings == []


def test_enum_without_alphabet_in_batch_is_silent():
    findings = [
        f
        for f in project_findings((GOOD_KINDS, "repro.netsim.fixture"))
        if f.rule_id == "PROTO-MODEL-ALPHABET"
    ]
    assert findings == []


# ----------------------------------------------------------------------
# The real protocol layer passes all five rules
# ----------------------------------------------------------------------
def test_real_protocol_modules_are_clean():
    import repro.analysis.model.specsync as model_specsync
    import repro.core.specsync as specsync
    import repro.netsim.messages as messages
    import repro.ps.engine as engine
    import repro.runtime.multiprocess as multiprocess
    from repro.analysis.engine import load_module

    modules = [
        load_module(m.__file__)
        for m in (messages, engine, specsync, multiprocess, model_specsync)
    ]
    findings = [
        f
        for f in LintEngine().lint_modules(modules)
        if f.rule_id.startswith("PROTO-") and not f.suppressed
    ]
    assert findings == []
