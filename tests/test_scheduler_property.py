"""Property-based tests of the SpecSync scheduler under random notify
sequences (no simulation — the fake clock from the unit tests, driven by
hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.core.hyperparams import SpecSyncHyperparams
from repro.core.scheduler import SpecSyncScheduler
from repro.core.tuning import AdaptiveTuner, FixedTuner


class RecordingClock:
    def __init__(self):
        self.now = 0.0
        self.pending = []

    def schedule(self, delay, fn):
        self.pending.append((self.now + delay, fn))

    def drain_until(self, time):
        self.now = time
        due = sorted(
            (t, i) for i, (t, _) in enumerate(self.pending) if t <= time
        )
        fired = [self.pending[i][1] for _, i in due]
        self.pending = [p for i, p in enumerate(self.pending)
                        if i not in {i for _, i in due}]
        for fn in fired:
            fn()


notify_sequences = st.lists(
    st.tuples(
        st.floats(min_value=0.001, max_value=5.0),  # inter-notify gap
        st.integers(min_value=0, max_value=5),      # worker id (m=6)
    ),
    min_size=1,
    max_size=60,
)


class TestSchedulerProperties:
    @settings(deadline=None, max_examples=30)
    @given(sequence=notify_sequences)
    def test_fixed_tuner_invariants(self, sequence):
        clock = RecordingClock()
        resyncs = []
        scheduler = SpecSyncScheduler(
            num_workers=6,
            tuner=FixedTuner(SpecSyncHyperparams(1.0, 0.3)),
            schedule_fn=clock.schedule,
            now_fn=lambda: clock.now,
            send_resync_fn=lambda w, i, n: resyncs.append((w, i)),
        )
        notifies = 0
        for gap, worker in sequence:
            clock.drain_until(clock.now + gap)
            scheduler.handle_notify(worker, iteration=notifies)
            notifies += 1
        clock.drain_until(clock.now + 10.0)  # let all checks fire

        # One check per notify; all checks eventually fire.
        assert scheduler.checks_run == notifies
        # Re-syncs never exceed checks.
        assert scheduler.resyncs_sent <= scheduler.checks_run
        assert len(resyncs) == scheduler.resyncs_sent
        # Re-syncs only target workers that notified.
        notified_workers = {w for _, w in sequence}
        assert {w for w, _ in resyncs} <= notified_workers
        # Epochs cannot outnumber floor(pushes / m).
        assert scheduler.epochs_completed <= notifies // 6

    @settings(deadline=None, max_examples=30)
    @given(sequence=notify_sequences)
    def test_adaptive_tuner_never_crashes_and_logs_epochs(self, sequence):
        clock = RecordingClock()
        scheduler = SpecSyncScheduler(
            num_workers=6,
            tuner=AdaptiveTuner(),
            schedule_fn=clock.schedule,
            now_fn=lambda: clock.now,
            send_resync_fn=lambda w, i, n: None,
        )
        for gap, worker in sequence:
            clock.drain_until(clock.now + gap)
            scheduler.handle_notify(worker, iteration=0)
        clock.drain_until(clock.now + 10.0)
        assert len(scheduler.hyperparam_log) == scheduler.epochs_completed
        # Tuned windows, when produced, are positive and below the mean span.
        for _, hyperparams in scheduler.hyperparam_log:
            if hyperparams is not None:
                assert hyperparams.abort_time_s > 0
                assert hyperparams.abort_rate >= 0

    @settings(deadline=None, max_examples=20)
    @given(
        sequence=notify_sequences,
        threshold_rate=st.floats(min_value=0.0, max_value=2.0),
    )
    def test_threshold_monotonicity(self, sequence, threshold_rate):
        """A higher ABORT_RATE can only reduce the number of re-syncs."""

        def run(rate):
            clock = RecordingClock()
            scheduler = SpecSyncScheduler(
                num_workers=6,
                tuner=FixedTuner(SpecSyncHyperparams(1.0, rate)),
                schedule_fn=clock.schedule,
                now_fn=lambda: clock.now,
                send_resync_fn=lambda w, i, n: None,
            )
            for gap, worker in sequence:
                clock.drain_until(clock.now + gap)
                scheduler.handle_notify(worker, iteration=0)
            clock.drain_until(clock.now + 10.0)
            return scheduler.resyncs_sent

        low = run(threshold_rate)
        high = run(threshold_rate + 0.2)
        assert high <= low
