"""Tests for the versioned parameter store."""

import numpy as np
import pytest

from repro.ml import ParamSet
from repro.ml.optim import ConstantSchedule, SgdUpdateRule
from repro.ps import ParameterStore


def make_store(num_shards=1, rate=0.1):
    params = ParamSet({"w": np.array([1.0, 2.0])})
    return ParameterStore(params, SgdUpdateRule(ConstantSchedule(rate)), num_shards)


def grad(value):
    return ParamSet({"w": np.array([value, value])})


class TestSnapshots:
    def test_snapshot_is_deep_copy(self):
        store = make_store()
        snap = store.snapshot(time=0.0)
        store.apply_push(0, grad(1.0), snap.version, time=1.0)
        # Snapshot unaffected by later pushes.
        np.testing.assert_allclose(snap.params["w"], [1.0, 2.0])

    def test_snapshot_version_tracks_pushes(self):
        store = make_store()
        assert store.snapshot(0.0).version == 0
        store.apply_push(0, grad(1.0), 0, 1.0)
        assert store.snapshot(2.0).version == 1

    def test_initial_params_copied(self):
        initial = ParamSet({"w": np.array([1.0, 2.0])})
        store = ParameterStore(initial, SgdUpdateRule(ConstantSchedule(0.1)))
        store.apply_push(0, grad(1.0), 0, 1.0)
        np.testing.assert_allclose(initial["w"], [1.0, 2.0])


class TestPushes:
    def test_push_applies_sgd(self):
        store = make_store(rate=0.5)
        store.apply_push(0, grad(1.0), 0, 1.0)
        np.testing.assert_allclose(store.params["w"], [0.5, 1.5])

    def test_staleness_computed_from_snapshot_version(self):
        store = make_store()
        snap = store.snapshot(0.0)  # version 0
        # Two other pushes land first.
        store.apply_push(1, grad(0.1), 0, 1.0)
        store.apply_push(2, grad(0.1), 1, 2.0)
        record = store.apply_push(0, grad(0.1), snap.version, 3.0)
        assert record.staleness == 2
        assert record.version_after == 3

    def test_fresh_push_has_zero_staleness(self):
        store = make_store()
        snap = store.snapshot(0.0)
        record = store.apply_push(0, grad(0.1), snap.version, 1.0)
        assert record.staleness == 0

    def test_future_version_rejected(self):
        store = make_store()
        with pytest.raises(ValueError):
            store.apply_push(0, grad(0.1), snapshot_version=5, time=1.0)

    def test_push_records_accumulate(self):
        store = make_store()
        for i in range(3):
            store.apply_push(i, grad(0.1), 0, float(i))
        records = store.push_records()
        assert len(records) == 3
        assert [r.worker_id for r in records] == [0, 1, 2]

    def test_mean_staleness(self):
        store = make_store()
        assert store.mean_staleness() == 0.0
        store.apply_push(0, grad(0.1), 0, 1.0)  # staleness 0
        store.apply_push(1, grad(0.1), 0, 2.0)  # staleness 1
        assert store.mean_staleness() == pytest.approx(0.5)

    def test_learning_rate_recorded(self):
        store = make_store(rate=0.25)
        record = store.apply_push(0, grad(1.0), 0, 1.0)
        assert record.learning_rate == 0.25


class TestSharding:
    def test_num_shards_validated(self):
        with pytest.raises(ValueError):
            make_store(num_shards=0)

    def test_shards_share_state(self):
        # Sharding is a transfer-timing concept; semantics are unchanged.
        store = make_store(num_shards=4, rate=0.5)
        store.apply_push(0, grad(1.0), 0, 1.0)
        np.testing.assert_allclose(store.snapshot(2.0).params["w"], [0.5, 1.5])

    def test_sequential_consistency(self):
        # Applying pushes in order must equal sequential SGD.
        store = make_store(rate=0.1)
        expected = np.array([1.0, 2.0])
        rng = np.random.default_rng(0)
        for i in range(20):
            g = rng.normal(size=2)
            store.apply_push(i % 3, ParamSet({"w": g}), 0, float(i))
            expected -= 0.1 * g
        np.testing.assert_allclose(store.params["w"], expected)
