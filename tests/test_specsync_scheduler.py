"""Unit tests for the SpecSync central scheduler (Algorithm 2) with a fake
clock — no simulation, just the callback surface."""

import pytest

from repro.core.hyperparams import SpecSyncHyperparams
from repro.core.scheduler import SpecSyncScheduler
from repro.core.tuning import AdaptiveTuner, FixedTuner


class FakeClock:
    """Manual clock + timer list standing in for the simulator."""

    def __init__(self):
        self.now = 0.0
        self.timers = []  # (fire_time, fn)

    def schedule(self, delay, fn):
        self.timers.append((self.now + delay, fn))

    def advance(self, to_time):
        self.now = to_time
        due = [(t, fn) for t, fn in self.timers if t <= to_time]
        self.timers = [(t, fn) for t, fn in self.timers if t > to_time]
        for _, fn in sorted(due, key=lambda x: x[0]):
            fn()


def make_scheduler(num_workers=4, abort_time=1.0, abort_rate=0.5, tuner=None):
    clock = FakeClock()
    resyncs = []
    scheduler = SpecSyncScheduler(
        num_workers=num_workers,
        tuner=tuner or FixedTuner(SpecSyncHyperparams(abort_time, abort_rate)),
        schedule_fn=clock.schedule,
        now_fn=lambda: clock.now,
        send_resync_fn=lambda w, i, n: resyncs.append((w, i, clock.now)),
    )
    return scheduler, clock, resyncs


class TestResyncDecision:
    def test_resync_when_threshold_met(self):
        # m=4, rate=0.5 -> threshold 2 peer pushes in the window.
        scheduler, clock, resyncs = make_scheduler()
        scheduler.handle_notify(0, iteration=1)
        clock.advance(0.2)
        scheduler.handle_notify(1, iteration=1)
        clock.advance(0.4)
        scheduler.handle_notify(2, iteration=1)
        clock.advance(1.0)  # worker 0's check fires now
        assert (0, 1, 1.0) in resyncs

    def test_no_resync_below_threshold(self):
        scheduler, clock, resyncs = make_scheduler()
        scheduler.handle_notify(0, iteration=1)
        clock.advance(0.5)
        scheduler.handle_notify(1, iteration=1)
        clock.advance(1.0)
        assert all(w != 0 for w, _, _ in resyncs)

    def test_own_pushes_not_counted(self):
        scheduler, clock, resyncs = make_scheduler(abort_rate=0.25)  # threshold 1
        scheduler.handle_notify(0, iteration=1)
        clock.advance(2.0)
        # no peers pushed inside worker 0's window
        assert resyncs == []

    def test_pushes_outside_window_not_counted(self):
        scheduler, clock, resyncs = make_scheduler(abort_time=1.0, abort_rate=0.5)
        scheduler.handle_notify(0, iteration=1)
        clock.advance(1.0)  # check for worker 0 fires with zero peer pushes
        scheduler.handle_notify(1, iteration=1)
        scheduler.handle_notify(2, iteration=1)
        assert all(w != 0 for w, _, _ in resyncs)

    def test_resync_carries_iteration_tag(self):
        scheduler, clock, resyncs = make_scheduler(abort_rate=0.25)
        scheduler.handle_notify(0, iteration=7)
        clock.advance(0.5)
        scheduler.handle_notify(1, iteration=3)
        clock.advance(1.0)
        assert (0, 7, 1.0) in resyncs

    def test_every_notify_schedules_exactly_one_check(self):
        scheduler, clock, _ = make_scheduler()
        for i in range(5):
            scheduler.handle_notify(i % 4, iteration=1)
        assert len(clock.timers) == 5

    def test_no_checks_when_speculation_disabled(self):
        scheduler, clock, _ = make_scheduler(tuner=AdaptiveTuner())
        # AdaptiveTuner.initial() is None -> no speculation in epoch 0
        scheduler.handle_notify(0, iteration=1)
        assert clock.timers == []


class TestEpochs:
    def test_epoch_completes_when_all_workers_pushed(self):
        scheduler, clock, _ = make_scheduler(num_workers=3)
        scheduler.handle_notify(0, 1)
        clock.advance(0.1)
        scheduler.handle_notify(1, 1)
        assert scheduler.epochs_completed == 0
        clock.advance(0.2)
        scheduler.handle_notify(2, 1)
        assert scheduler.epochs_completed == 1

    def test_repeat_pushes_do_not_complete_epoch(self):
        scheduler, clock, _ = make_scheduler(num_workers=3)
        for _ in range(5):
            clock.advance(clock.now + 0.1)
            scheduler.handle_notify(0, 1)
        assert scheduler.epochs_completed == 0

    def test_adaptive_tuner_enabled_after_first_epoch(self):
        scheduler, clock, _ = make_scheduler(num_workers=2, tuner=AdaptiveTuner())
        assert scheduler.hyperparams is None
        scheduler.handle_notify(0, 1)
        clock.advance(1.0)
        scheduler.handle_notify(1, 1)
        clock.advance(2.0)
        scheduler.handle_notify(0, 2)
        clock.advance(3.0)
        scheduler.handle_notify(1, 2)
        # At least one epoch boundary passed; hyperparams may now exist
        # (requires >= 2 pushes and span estimates in the epoch).
        assert scheduler.epochs_completed >= 1

    def test_span_estimation_from_notify_gaps(self):
        scheduler, clock, _ = make_scheduler(num_workers=2)
        for t in (0.0, 10.0, 20.0, 30.0):
            clock.advance(t)
            scheduler.handle_notify(0, 1)
        assert scheduler.estimated_span(0) == pytest.approx(10.0)
        assert scheduler.estimated_span(1) is None

    def test_hyperparam_log_records_boundaries(self):
        scheduler, clock, _ = make_scheduler(num_workers=2)
        scheduler.handle_notify(0, 1)
        clock.advance(1.0)
        scheduler.handle_notify(1, 1)
        assert len(scheduler.hyperparam_log) == 1


class TestValidation:
    def test_unknown_worker_rejected(self):
        scheduler, _, _ = make_scheduler(num_workers=2)
        with pytest.raises(ValueError):
            scheduler.handle_notify(5, 1)

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            SpecSyncScheduler(
                num_workers=0,
                tuner=FixedTuner(SpecSyncHyperparams(1.0, 0.1)),
                schedule_fn=lambda d, f: None,
                now_fn=lambda: 0.0,
                send_resync_fn=lambda w, i, n: None,
            )

    def test_summary_counts(self):
        scheduler, clock, resyncs = make_scheduler(abort_rate=0.25)
        scheduler.handle_notify(0, 1)
        clock.advance(0.5)
        scheduler.handle_notify(1, 1)
        clock.advance(1.5)
        summary = scheduler.summary()
        assert summary["checks_run"] == 2
        assert summary["resyncs_sent"] == len(resyncs)
