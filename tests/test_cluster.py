"""Tests for instance catalog, compute models, and cluster specs."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.cluster import (
    ClusterSpec,
    ComputeTimeModel,
    INSTANCE_CATALOG,
    StragglerModel,
    get_instance,
)


class TestInstanceCatalog:
    def test_paper_types_present(self):
        for name in ("m3.xlarge", "m3.2xlarge", "m4.xlarge", "m4.2xlarge"):
            assert name in INSTANCE_CATALOG

    def test_m4_xlarge_is_reference(self):
        assert get_instance("m4.xlarge").speed_factor == 1.0

    def test_2xlarge_faster_than_xlarge(self):
        assert (
            get_instance("m4.2xlarge").speed_factor
            > get_instance("m4.xlarge").speed_factor
        )
        assert (
            get_instance("m3.2xlarge").speed_factor
            > get_instance("m3.xlarge").speed_factor
        )

    def test_m4_newer_than_m3(self):
        assert (
            get_instance("m4.xlarge").speed_factor
            > get_instance("m3.xlarge").speed_factor
        )

    def test_iteration_time_scales_inverse(self):
        fast = get_instance("m4.2xlarge")
        assert fast.iteration_time(14.0) == pytest.approx(14.0 / fast.speed_factor)

    def test_unknown_type_error_lists_known(self):
        with pytest.raises(KeyError, match="m4.xlarge"):
            get_instance("c5.24xlarge")


class TestStragglerModel:
    def test_disabled_by_default(self):
        rng = np.random.default_rng(0)
        model = StragglerModel()
        assert all(model.slowdown_factor(rng) == 1.0 for _ in range(100))

    def test_always_straggle(self):
        rng = np.random.default_rng(0)
        model = StragglerModel(probability=1.0, max_slowdown=2.0)
        factors = [model.slowdown_factor(rng) for _ in range(100)]
        assert all(1.0 <= f <= 3.0 for f in factors)
        assert any(f > 1.01 for f in factors)

    def test_probability_validated(self):
        with pytest.raises(ValueError):
            StragglerModel(probability=1.5)

    def test_empirical_rate(self):
        rng = np.random.default_rng(0)
        model = StragglerModel(probability=0.25, max_slowdown=1.0)
        hits = sum(model.slowdown_factor(rng) > 1.0 for _ in range(4000))
        assert 0.2 < hits / 4000 < 0.3


class TestComputeTimeModel:
    def test_no_jitter_is_deterministic(self):
        rng = np.random.default_rng(0)
        model = ComputeTimeModel(mean_time_s=3.0, jitter_sigma=0.0)
        assert all(model.sample(rng) == 3.0 for _ in range(10))

    def test_jitter_preserves_mean(self):
        rng = np.random.default_rng(0)
        model = ComputeTimeModel(mean_time_s=10.0, jitter_sigma=0.3)
        samples = [model.sample(rng) for _ in range(20000)]
        assert np.mean(samples) == pytest.approx(10.0, rel=0.02)

    def test_samples_positive(self):
        rng = np.random.default_rng(1)
        model = ComputeTimeModel(mean_time_s=1.0, jitter_sigma=0.5)
        assert all(model.sample(rng) > 0 for _ in range(1000))

    def test_scaled_divides_mean(self):
        model = ComputeTimeModel(mean_time_s=14.0, jitter_sigma=0.1)
        assert model.scaled(2.0).mean_time_s == pytest.approx(7.0)

    def test_scaled_preserves_jitter_and_straggler(self):
        straggler = StragglerModel(probability=0.1)
        model = ComputeTimeModel(mean_time_s=1.0, jitter_sigma=0.2, straggler=straggler)
        scaled = model.scaled(3.0)
        assert scaled.jitter_sigma == 0.2
        assert scaled.straggler is straggler

    def test_invalid_mean_rejected(self):
        with pytest.raises(ValueError):
            ComputeTimeModel(mean_time_s=0.0)

    @given(st.floats(min_value=0.1, max_value=10.0))
    def test_scaled_sample_distribution_shifts(self, factor):
        base = ComputeTimeModel(mean_time_s=5.0, jitter_sigma=0.0)
        rng = np.random.default_rng(0)
        assert base.scaled(factor).sample(rng) == pytest.approx(5.0 / factor)


class TestClusterSpec:
    def test_homogeneous_cluster1(self):
        spec = ClusterSpec.homogeneous(40)
        assert spec.num_workers == 40
        assert not spec.is_heterogeneous
        assert spec.speed_factors() == [1.0] * 40

    def test_heterogeneous_cluster2_default_mix(self):
        spec = ClusterSpec.heterogeneous()
        assert spec.num_workers == 40
        assert spec.is_heterogeneous
        types = {n.instance.name for n in spec.nodes}
        assert types == {"m3.xlarge", "m3.2xlarge", "m4.xlarge", "m4.2xlarge"}

    def test_custom_mix(self):
        spec = ClusterSpec.heterogeneous([("m4.xlarge", 2), ("m3.xlarge", 3)])
        assert spec.num_workers == 5

    def test_unique_node_names(self):
        spec = ClusterSpec.heterogeneous()
        names = [n.name for n in spec.nodes]
        assert len(set(names)) == len(names)

    def test_describe(self):
        assert "40x m4.xlarge" in ClusterSpec.homogeneous(40).describe()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ClusterSpec(nodes=())

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            ClusterSpec.homogeneous(0)

    def test_server_names_colocated(self):
        spec = ClusterSpec.homogeneous(4)
        assert len(spec.server_names) == 4
