"""Profiler correctness: determinism on the DES, trace export, null path.

The headline guarantee (ISSUE acceptance): two identical seeded DES runs
produce **byte-identical** perf snapshots, because every phase duration
comes from the virtual clock and every snapshot renders sorted.
"""

import io
import json

from repro.cluster.spec import ClusterSpec
from repro.core.specsync import SpecSyncPolicy
from repro.obs import (
    NULL_PROFILER,
    PERF_SCHEMA_VERSION,
    PerfProfile,
    Profiler,
    collecting,
    profiler_for,
    render_perf_report,
    write_chrome_trace,
)
from repro.obs.clock import FunctionClock
from repro.workloads import tiny_workload


def _seeded_perf_snapshot() -> dict:
    workload = tiny_workload()
    with collecting() as collector:
        workload.run(
            ClusterSpec.homogeneous(3),
            SpecSyncPolicy.adaptive(),
            seed=3,
            horizon_s=30.0,
        )
    return collector.perf.snapshot()


class TestDeterminism:
    def test_identical_runs_have_byte_identical_snapshots(self):
        first = json.dumps(_seeded_perf_snapshot(), sort_keys=True)
        second = json.dumps(_seeded_perf_snapshot(), sort_keys=True)
        assert first == second

    def test_expected_phases_and_reports_are_present(self):
        perf = _seeded_perf_snapshot()
        assert perf["schema_version"] == PERF_SCHEMA_VERSION
        for phase in ("engine.pull", "engine.compute", "engine.push",
                      "engine.iteration", "scheduler.check_skew"):
            assert phase in perf["phases"], phase
            assert perf["phases"][phase]["count"] > 0
        assert "engine:tiny:specsync-adaptive:seed3" in perf["reports"]
        assert "scheduler:specsync-adaptive" in perf["reports"]
        assert any(
            name.startswith("engine.push_interval.w") for name in perf["series"]
        )
        assert any(
            name.startswith("sim.dispatch.") for name in perf["counters"]
        )


class TestProfilerUnit:
    def test_phase_measure_hit_sample_report(self):
        ticks = iter(float(i) for i in range(100))
        profiler = Profiler(PerfProfile(), FunctionClock(lambda: next(ticks)))
        profiler.phase("p", start=0.0, end=2.5)
        with profiler.measure("m"):
            pass
        profiler.hit("h", 3.0)
        profiler.sample("s", 42.0, ts=1.0)
        profiler.report("r", {"ok": True})
        snap = profiler.profile.snapshot()
        assert snap["phases"]["p"]["mean"] == 2.5
        assert snap["phases"]["m"]["count"] == 1
        assert snap["counters"]["h"] == 3.0
        assert snap["series"]["s"]["last"] == 42.0
        assert snap["reports"]["r"] == {"ok": True}

    def test_profile_empty_flag(self):
        profile = PerfProfile()
        assert profile.empty
        profile.counter("c").inc()
        assert not profile.empty

    def test_profiler_for_returns_null_when_disabled(self):
        profiler = profiler_for(FunctionClock(lambda: 0.0))
        assert profiler is NULL_PROFILER
        assert not profiler.enabled

    def test_profiler_for_binds_active_collector(self):
        with collecting() as collector:
            profiler = profiler_for(FunctionClock(lambda: 0.0))
            assert profiler.enabled
            profiler.hit("x")
        assert collector.perf.snapshot()["counters"]["x"] == 1.0

    def test_null_profiler_is_inert(self):
        NULL_PROFILER.phase("p", 0.0, 1.0)
        NULL_PROFILER.hit("h")
        NULL_PROFILER.sample("s", 1.0)
        NULL_PROFILER.report("r", {})
        with NULL_PROFILER.measure("m"):
            pass


class TestTraceExport:
    def test_perf_section_lands_in_trace_file(self):
        workload = tiny_workload()
        with collecting() as collector:
            workload.run(
                ClusterSpec.homogeneous(3),
                SpecSyncPolicy.adaptive(),
                seed=3,
                horizon_s=30.0,
            )
        handle = io.StringIO()
        write_chrome_trace(collector, handle)
        trace = json.loads(handle.getvalue())
        assert trace["otherData"]["format_version"] == 2
        assert trace["perf"]["schema_version"] == PERF_SCHEMA_VERSION
        assert trace["perf"]["phases"]

    def test_render_perf_report_covers_all_sections(self):
        workload = tiny_workload()
        with collecting() as collector:
            workload.run(
                ClusterSpec.homogeneous(3),
                SpecSyncPolicy.adaptive(),
                seed=3,
                horizon_s=30.0,
            )
        handle = io.StringIO()
        write_chrome_trace(collector, handle)
        text = render_perf_report(json.loads(handle.getvalue()))
        assert "phase latency percentiles" in text
        assert "hot paths" in text
        assert "time series" in text
        assert "anomaly detectors" in text

    def test_render_perf_report_without_perf_section(self):
        text = render_perf_report({"traceEvents": []})
        assert "no perf data" in text
