"""Tests for CSV exporters (using synthetic result objects)."""

import csv

import pytest

from repro.experiments.export import (
    export_fig3_csv,
    export_fig5_csv,
    export_fig8_csv,
    export_fig12_csv,
)
from repro.experiments.fig3_pap import Fig3Result
from repro.experiments.fig5_naive_waiting import Fig5Result
from repro.experiments.fig8_effectiveness import Fig8Cell, Fig8Result
from repro.experiments.fig12_transfer import Fig12Result
from repro.metrics.curves import EvalPoint, LossCurve
from repro.metrics.pap import BoxStats


def small_curve():
    curve = LossCurve()
    curve.add(EvalPoint(1.0, 5, 0.9))
    curve.add(EvalPoint(2.0, 10, 0.7))
    return curve


def read_rows(path):
    with open(path, newline="") as handle:
        return list(csv.reader(handle))


class TestFig3Export:
    def test_rows_and_header(self, tmp_path):
        box = BoxStats(p5=1, p25=2, median=3, p75=4, p95=5)
        result = Fig3Result(
            boxes={"mf": {0: box, 1: box}}, median_pap_2s={"mf": 3.0},
            num_workers=4,
        )
        path = tmp_path / "fig3.csv"
        count = export_fig3_csv(result, path)
        rows = read_rows(path)
        assert count == 2
        assert rows[0][0] == "workload"
        assert rows[1][:2] == ["mf", "0"]


class TestFig5Export:
    def test_curve_rows(self, tmp_path):
        result = Fig5Result(
            curves={"mf": {0.0: small_curve(), 1.0: small_curve()}},
            time_to_target={"mf": {0.0: None, 1.0: 2.0}},
            staleness={"mf": {0.0: 5.0, 1.0: 4.0}},
            targets={"mf": 0.5},
        )
        path = tmp_path / "fig5.csv"
        assert export_fig5_csv(result, path) == 4
        rows = read_rows(path)
        assert rows[0] == ["workload", "delay_s", "time_s", "loss"]
        assert len(rows) == 5


class TestFig8Export:
    def test_skips_cells_without_results(self, tmp_path):
        class FakeRun:
            curve = small_curve()

        cells = [
            Fig8Cell("mf", "original", "ASP", result=FakeRun(),
                     time_to_convergence=None),
            Fig8Cell("mf", "adaptive", "SpecSync", result=None,
                     time_to_convergence=None),
        ]
        result = Fig8Result(cells=cells, targets={"mf": 0.5})
        path = tmp_path / "fig8.csv"
        assert export_fig8_csv(result, path) == 2
        rows = read_rows(path)
        assert all(row[1] == "original" for row in rows[1:])


class TestFig12Export:
    def test_series_rows(self, tmp_path):
        result = Fig12Result(
            series={"mf": {"original": [(0.0, 0.0), (1.0, 10.0)]}},
            total_to_convergence={"mf": {"original": 10.0, "adaptive": None}},
            rate={"mf": {"original": 10.0, "adaptive": 10.0}},
        )
        path = tmp_path / "fig12.csv"
        assert export_fig12_csv(result, path) == 2
        rows = read_rows(path)
        assert rows[-1] == ["mf", "original", "1.0", "10.0"]

    def test_creates_parent_dirs(self, tmp_path):
        result = Fig12Result(series={}, total_to_convergence={}, rate={})
        path = tmp_path / "deep" / "nested" / "fig12.csv"
        export_fig12_csv(result, path)
        assert path.exists()
