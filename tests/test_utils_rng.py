"""Tests for deterministic RNG streams."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.rng import RngStreams, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "worker", 3) == derive_seed(7, "worker", 3)

    def test_distinct_paths(self):
        assert derive_seed(7, "worker", 3) != derive_seed(7, "worker", 4)

    def test_distinct_roots(self):
        assert derive_seed(7, "x") != derive_seed(8, "x")

    def test_empty_path(self):
        assert derive_seed(1) == derive_seed(1)

    def test_name_types(self):
        # ints and strings are both usable path components
        assert derive_seed(0, 1, "a") == derive_seed(0, 1, "a")
        assert derive_seed(0, 1, "a") != derive_seed(0, "1", "a")

    @given(st.integers(min_value=0, max_value=2**32), st.text(max_size=20))
    def test_always_in_numpy_seed_range(self, root, name):
        seed = derive_seed(root, name)
        assert 0 <= seed < 2**63
        # numpy must accept it
        np.random.default_rng(seed)


class TestRngStreams:
    def test_same_path_same_generator_object(self):
        streams = RngStreams(42)
        assert streams.get("compute", 0) is streams.get("compute", 0)

    def test_different_paths_independent(self):
        streams = RngStreams(42)
        a = streams.get("a").random(5)
        b = streams.get("b").random(5)
        assert not np.allclose(a, b)

    def test_reproducible_across_instances(self):
        a = RngStreams(42).get("batch", 3).random(10)
        b = RngStreams(42).get("batch", 3).random(10)
        assert np.allclose(a, b)

    def test_unaffected_by_other_streams(self):
        # Drawing from one stream must not perturb another.
        lone = RngStreams(42)
        expected = lone.get("target").random(5)

        busy = RngStreams(42)
        busy.get("noise").random(1000)
        observed = busy.get("target").random(5)
        assert np.allclose(expected, observed)

    def test_spawn_children_independent(self):
        parent = RngStreams(42)
        child_a = parent.spawn("worker", 0)
        child_b = parent.spawn("worker", 1)
        assert child_a.root_seed != child_b.root_seed
        assert not np.allclose(child_a.get("x").random(5), child_b.get("x").random(5))

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RngStreams(-1)

    def test_repr(self):
        streams = RngStreams(5)
        streams.get("a")
        assert "root_seed=5" in repr(streams)
