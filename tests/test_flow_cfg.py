"""CFG construction edge cases, pinned by golden dumps under tests/data/.

The golden files are the full ``render_cfg`` output for functions that
exercise the builder's hard paths: ``finally`` duplication when a
``return`` sits inside the ``try``, nested ``with`` blocks, ``while`` /
``else`` with ``break`` bypassing the else clause, and a bare ``raise``
re-raise inside a handler.  Regenerate a golden by running the test with
``REGEN_CFG_GOLDENS=1`` after an intentional builder change, and review
the diff like any other code change.
"""

import ast
import os
import textwrap

import pytest

from repro.analysis.flow import build_cfg, build_cfgs, render_cfg
from repro.analysis.flow.cfg import ENTRY, EXIT, RAISE

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")

FIXTURES = {
    "try_finally_return": '''
def f(x):
    resource.acquire()
    try:
        if x:
            return early()
        middle()
    finally:
        resource.release()
    return late()
''',
    "nested_with": '''
def g(a, b):
    with open(a) as fa:
        with open(b) as fb:
            merge(fa, fb)
        tail(fa)
''',
    "while_else": '''
def h(items):
    while items:
        if check(items):
            break
        items = shrink(items)
    else:
        exhausted()
    return items
''',
    "bare_reraise": '''
def k():
    try:
        risky()
    except ValueError:
        note()
        raise
''',
}


def _cfg_for(name):
    fn = ast.parse(textwrap.dedent(FIXTURES[name])).body[0]
    return build_cfg(fn)


@pytest.mark.parametrize("name", sorted(FIXTURES))
def test_cfg_matches_golden(name):
    rendered = render_cfg(_cfg_for(name)) + "\n"
    golden_path = os.path.join(DATA_DIR, f"cfg_{name}.txt")
    if os.environ.get("REGEN_CFG_GOLDENS"):
        with open(golden_path, "w", encoding="utf-8") as handle:
            handle.write(rendered)
    with open(golden_path, "r", encoding="utf-8") as handle:
        golden = handle.read()
    assert rendered == golden, (
        f"CFG for {name} drifted from tests/data/cfg_{name}.txt; if the "
        f"builder change is intentional, regenerate with REGEN_CFG_GOLDENS=1"
    )


def test_return_in_try_flows_through_finally_to_exit():
    cfg = _cfg_for("try_finally_return")
    # The return block's successor must be a finally copy, not EXIT:
    # skipping the finalizer on early return would unwind without cleanup.
    returns = [
        b for b in cfg.blocks.values() if b.label == "return" and b.line == 6
    ]
    assert len(returns) == 1
    (next_edge,) = [
        e for e in cfg.successors(returns[0].block_id) if e.kind == "next"
    ]
    finally_block = cfg.blocks[next_edge.dst]
    assert finally_block.in_finally
    assert finally_block.line == 9  # resource.release()
    # ... and that copy continues to EXIT, completing the return.
    assert any(
        e.dst == EXIT for e in cfg.successors(finally_block.block_id)
    )


def test_finally_copies_are_per_exit_kind():
    cfg = _cfg_for("try_finally_return")
    # Three distinct inlined copies of the finalizer: exception unwind,
    # early return, and normal completion.
    copies = [b for b in cfg.blocks.values() if b.in_finally]
    assert len(copies) == 3
    assert all(b.line == 9 for b in copies)


def test_break_bypasses_while_else():
    cfg = _cfg_for("while_else")
    (brk,) = [b for b in cfg.blocks.values() if b.label == "break"]
    (ret,) = [b for b in cfg.blocks.values() if b.label == "return"]
    (els,) = [b for b in cfg.blocks.values() if b.line == 8]  # exhausted()
    # break jumps straight to the statement after the loop ...
    assert [e.dst for e in cfg.successors(brk.block_id)] == [ret.block_id]
    # ... while the else clause is only entered from the loop head test.
    assert all(e.src != brk.block_id for e in cfg.predecessors(els.block_id))


def test_bare_reraise_routes_to_raise_block():
    cfg = _cfg_for("bare_reraise")
    (reraise,) = [b for b in cfg.blocks.values() if b.label == "raise"
                  and not b.synthetic]
    assert [(e.dst, e.kind) for e in cfg.successors(reraise.block_id)] == [
        (RAISE, "exc")
    ]
    # the handler head also keeps unwinding when the type doesn't match
    (head,) = [b for b in cfg.blocks.values() if b.label.startswith("except")]
    assert any(
        e.dst == RAISE and e.kind == "false"
        for e in cfg.successors(head.block_id)
    )


def test_every_reachable_block_reaches_an_exit():
    # No dangling control flow: from any reachable block there is a path
    # to EXIT or RAISE in every fixture.
    for name in FIXTURES:
        cfg = _cfg_for(name)
        reachable = cfg.reachable()
        for bid in reachable:
            if bid in (ENTRY, EXIT, RAISE):
                continue
            seen = {bid}
            stack = [bid]
            hit_exit = False
            while stack and not hit_exit:
                for edge in cfg.successors(stack.pop()):
                    if edge.dst in (EXIT, RAISE):
                        hit_exit = True
                        break
                    if edge.dst not in seen:
                        seen.add(edge.dst)
                        stack.append(edge.dst)
            assert hit_exit, f"{name}: block {bid} cannot reach an exit"


def test_build_cfgs_flattens_qualnames():
    tree = ast.parse(textwrap.dedent('''
        class Outer:
            def method(self):
                def inner():
                    pass
                return inner

        def top():
            pass
    '''))
    cfgs = build_cfgs(tree, "mod")
    assert set(cfgs) == {
        "mod.Outer.method",
        "mod.Outer.method.inner",
        "mod.top",
    }


def test_constant_tests_drop_impossible_edges():
    src = '''
def loop():
    while True:
        step()
    never()
'''
    fn = ast.parse(textwrap.dedent(src)).body[0]
    cfg = build_cfg(fn)
    dead = cfg.unreachable_blocks()
    assert [b.line for b in dead if b.stmt is not None] == [5]  # never()
