"""Seeded-defect tests for the dynamic sanitizer layer.

Each sanitizer gets a fixture with a deliberately planted defect — a
lock inversion, an unlocked shared write, a nondeterministic event
stream — and must produce exactly the expected finding, attributed to
the file:line of the planted defect in *this* file.
"""

import inspect
import os
import threading

from repro.analysis.dynamic import (
    LocksetMonitor,
    LockTrace,
    TracedLock,
    TracedRLock,
    TracingMpShim,
    check_replay,
    cycle_findings,
    held_at_exit_findings,
    observed_lock_graph,
    unwatch,
    watch_guarded_state,
)
from repro.analysis.dynamic.lockorder import (
    DYN_LOCK_CYCLE,
    DYN_LOCK_HELD_AT_EXIT,
)
from repro.analysis.dynamic.lockset import DYN_LOCKSET_RACE
from repro.analysis.dynamic.replay import DYN_REPLAY_DIVERGENCE
from repro.analysis.findings import Severity
from repro.events.simulator import Simulator

HERE = os.path.basename(__file__)


def _line_of(fn, offset):
    """Absolute line number of ``fn``'s def line plus ``offset``."""
    return inspect.getsourcelines(fn)[1] + offset


class TestLockTrace:
    def test_held_set_captured_on_acquire(self):
        trace = LockTrace()
        a = TracedLock("t.a", trace)
        b = TracedLock("t.b", trace)
        with a:
            assert trace.held() == ("t.a",)
            with b:
                assert trace.held() == ("t.a", "t.b")
        assert trace.held() == ()
        acquires = [e for e in trace.events() if e.action == "acquire"]
        assert acquires[1].held_before == ("t.a",)
        assert len(trace) == 4

    def test_rlock_reentry_tracks_depth(self):
        trace = LockTrace()
        r = TracedRLock("t.r", trace)
        with r:
            with r:
                assert trace.held() == ("t.r", "t.r")
            assert trace.held() == ("t.r",)
        assert trace.held() == ()

    def test_call_site_skips_instrumentation_frames(self):
        trace = LockTrace()
        lock = TracedLock("t.x", trace)
        with lock:
            pass
        for event in trace.events():
            assert os.path.basename(event.path) == HERE


class TestLockOrderCycle:
    def test_seeded_inversion_detected_exactly_once(self):
        trace = LockTrace()
        a = TracedLock("inv.a", trace)
        b = TracedLock("inv.b", trace)

        def a_then_b():
            with a:
                with b:  # witness line: acquire b while holding a
                    pass

        def b_then_a():
            with b:
                with a:
                    pass

        for fn in (a_then_b, b_then_a):
            t = threading.Thread(target=fn)
            t.start()
            t.join()

        findings = cycle_findings(observed_lock_graph(trace))
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule_id == DYN_LOCK_CYCLE
        assert finding.severity is Severity.ERROR
        assert "inv.a -> inv.b -> inv.a" in finding.message
        assert os.path.basename(finding.path) == HERE
        assert finding.line == _line_of(a_then_b, 2)

    def test_consistent_order_is_clean(self):
        trace = LockTrace()
        a = TracedLock("ok.a", trace)
        b = TracedLock("ok.b", trace)
        for _ in range(3):
            with a:
                with b:
                    pass
        assert cycle_findings(observed_lock_graph(trace)) == []

    def test_rlock_reentry_is_not_a_cycle(self):
        trace = LockTrace()
        r = TracedRLock("ok.r", trace)
        with r:
            with r:
                pass
        graph = observed_lock_graph(trace)
        assert graph.edge_pairs() == set()


class TestHeldAtExit:
    def test_dangling_acquire_flagged(self):
        trace = LockTrace()
        lock = TracedLock("dangle.lock", trace)
        lock.acquire()  # never released
        try:
            findings = held_at_exit_findings(trace)
        finally:
            lock.release()
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule_id == DYN_LOCK_HELD_AT_EXIT
        assert finding.severity is Severity.WARNING
        assert "dangle.lock" in finding.message
        assert os.path.basename(finding.path) == HERE

    def test_balanced_trace_is_clean(self):
        trace = LockTrace()
        lock = TracedLock("ok.lock", trace)
        with lock:
            pass
        assert held_at_exit_findings(trace) == []


class _Store:
    """A lock-owning class with one guarded field, for race seeding."""

    def __init__(self):
        self._lock = threading.Lock()
        self._data = 0


class TestLocksetRace:
    def _store_and_lock(self, trace):
        store = _Store()
        # Replace the real lock with a traced one so held-sets register.
        store._lock = TracedLock("race._Store._lock", trace)
        return store

    def test_seeded_unlocked_write_detected(self):
        trace = LockTrace()
        monitor = LocksetMonitor(trace)
        store = self._store_and_lock(trace)
        watch_guarded_state(store, {"_data"}, monitor)

        def locked_write():
            with store._lock:
                store._data = 1

        def unlocked_write():
            store._data = 2  # the planted race

        for fn in (locked_write, unlocked_write):
            t = threading.Thread(target=fn)
            t.start()
            t.join()

        findings = monitor.findings()
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule_id == DYN_LOCKSET_RACE
        assert finding.severity is Severity.ERROR
        assert "_data" in finding.message
        assert os.path.basename(finding.path) == HERE
        assert finding.line == _line_of(unlocked_write, 1)

    def test_consistently_locked_access_is_clean(self):
        trace = LockTrace()
        monitor = LocksetMonitor(trace)
        store = self._store_and_lock(trace)
        watch_guarded_state(store, {"_data"}, monitor)

        def locked_bump():
            for _ in range(5):
                with store._lock:
                    store._data += 1

        threads = [threading.Thread(target=locked_bump) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert monitor.findings() == []
        assert monitor.fields_tracked() == 1

    def test_single_thread_exclusive_phase_is_exempt(self):
        trace = LockTrace()
        monitor = LocksetMonitor(trace)
        store = self._store_and_lock(trace)
        watch_guarded_state(store, {"_data"}, monitor)
        store._data = 1  # unlocked, but single-owner: Eraser init phase
        store._data = 2
        assert store._data == 2
        assert monitor.findings() == []

    def test_unwatch_restores_class(self):
        trace = LockTrace()
        monitor = LocksetMonitor(trace)
        store = self._store_and_lock(trace)
        watch_guarded_state(store, {"_data"}, monitor)
        assert type(store).__name__ == "Watched_Store"
        unwatch(store)
        assert type(store) is _Store


class TestReplayDeterminism:
    def test_deterministic_scenario_matches(self):
        def scenario():
            sim = Simulator()

            def tick(n):
                if n < 4:
                    sim.schedule(1.0, tick, n + 1)

            sim.schedule(1.0, tick, 0)
            sim.run()

        report = check_replay(scenario)
        assert report.deterministic
        assert report.findings == []
        assert report.run_lengths == (5, 5)

    def test_seeded_nondeterminism_detected(self):
        calls = [0]

        def tick_builder(sim):
            def tick(n):
                # Event 2 fires 0.5s later on the second run only.
                late = 0.5 if calls[0] == 2 and n == 1 else 0.0
                if n < 3:
                    sim.schedule(1.0 + late, tick, n + 1)

            return tick

        def scenario():
            calls[0] += 1
            sim = Simulator()
            sim.schedule(1.0, tick_builder(sim), 0)
            sim.run()

        report = check_replay(scenario)
        assert not report.deterministic
        assert report.divergence_index == 2
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.rule_id == DYN_REPLAY_DIVERGENCE
        assert finding.severity is Severity.ERROR
        assert "diverged at event 2" in finding.message
        assert os.path.basename(finding.path) == HERE

    def test_tap_removed_even_when_scenario_raises(self):
        def broken():
            raise RuntimeError("boom")

        try:
            check_replay(broken)
        except RuntimeError:
            pass
        assert Simulator._taps == ()


class TestMpShimNotes:
    def test_parent_side_resources_are_noted(self):
        trace = LockTrace()
        ctx = TracingMpShim(trace).get_context("fork")
        queue = ctx.Queue()
        event = ctx.Event()
        try:
            kinds = sorted(n.kind for n in trace.notes())
            assert kinds == ["mp.Event", "mp.Queue"]
            for note in trace.notes():
                assert os.path.basename(note.path) == HERE
        finally:
            queue.close()
            queue.join_thread()
            assert not event.is_set()
