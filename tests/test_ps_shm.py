"""Tests for the zero-copy shared-memory parameter store (repro.ps.shm).

Covers the seqlock fence semantics in-process, the cross-process path
(fork inheritance and explicit spec/attach), and the ownership protocol
(single writer, owner-only unlink, closed-segment access).
"""

import multiprocessing

import numpy as np
import pytest

from repro.ml.params import ParamSet
from repro.ps.shm import ShmArraySegment, ShmParamStore, ShmStoreSpec


def make_params():
    return ParamSet({
        "w": np.arange(6.0).reshape(2, 3),
        "b": np.array([0.5]),
    })


@pytest.fixture
def store():
    s = ShmParamStore.create(make_params())
    yield s
    s.close()
    s.unlink()


class TestRoundTrip:
    def test_create_publishes_initial_values_at_version_zero(self, store):
        snapshot, version = store.read()
        assert version == 0
        np.testing.assert_allclose(snapshot["w"], make_params()["w"])
        np.testing.assert_allclose(snapshot["b"], [0.5])

    def test_write_then_read_round_trips_values_and_version(self, store):
        updated = make_params().copy()
        updated["w"][...] = 7.0
        store.write(updated, version=3)
        snapshot, version = store.read()
        assert version == 3
        np.testing.assert_allclose(snapshot["w"], np.full((2, 3), 7.0))
        assert store.version == 3

    def test_read_returns_owning_copies(self, store):
        snapshot, _ = store.read()
        snapshot["w"][...] = -1.0
        again, _ = store.read()
        np.testing.assert_allclose(again["w"], make_params()["w"])

    def test_keys_preserved_in_order(self, store):
        assert store.keys() == ["w", "b"]


class TestFences:
    def test_write_fence_publishes_version_atomically_with_payload(self, store):
        with store.write_fence(5):
            store.backing()["b"][...] = 9.0
        snapshot, version = store.read()
        assert version == 5
        np.testing.assert_allclose(snapshot["b"], [9.0])

    def test_read_fence_reports_torn_read(self, store):
        fence_ctx = store.write_fence(1)
        fence_ctx.__enter__()  # leave the seqlock odd: write in flight
        try:
            with store.read_fence() as fence:
                pass
            assert not fence.consistent
        finally:
            fence_ctx.__exit__(None, None, None)
        with store.read_fence() as fence:
            pass
        assert fence.consistent

    def test_nested_write_fence_rejected(self, store):
        with store.write_fence(1):
            with pytest.raises(RuntimeError, match="single-writer"):
                with store.write_fence(2):
                    pass  # pragma: no cover

    def test_backing_wraps_live_segments_without_copy(self, store):
        live = store.backing()
        with store.write_fence(1):
            live["w"][...] = 2.0
        snapshot, _ = store.read()
        np.testing.assert_allclose(snapshot["w"], np.full((2, 3), 2.0))


class TestCrossProcess:
    def test_fork_inherited_store_sees_fenced_writes(self, store):
        def child(s, done):
            params = s.backing()
            with s.write_fence(11):
                params["w"][...] = 4.0
            done.put("ok")

        done = multiprocessing.Queue()
        proc = multiprocessing.Process(target=child, args=(store, done))
        proc.start()
        assert done.get(timeout=30) == "ok"
        proc.join(timeout=30)
        snapshot, version = store.read()
        assert version == 11
        np.testing.assert_allclose(snapshot["w"], np.full((2, 3), 4.0))

    def test_spec_attach_maps_same_segments(self, store):
        spec = store.spec()
        assert isinstance(spec, ShmStoreSpec)
        other = ShmParamStore.attach(spec)
        try:
            store.write(make_params().copy(), version=2)
            snapshot, version = other.read()
            assert version == 2
            np.testing.assert_allclose(snapshot["w"], make_params()["w"])
        finally:
            other.close()

    def test_attached_store_may_not_unlink(self, store):
        other = ShmParamStore.attach(store.spec())
        try:
            with pytest.raises(RuntimeError, match="own"):
                other.unlink()
        finally:
            other.close()


class TestQueuePathEquivalence:
    """The zero-copy path computes exactly what the pickled path did."""

    def test_seeded_update_stream_matches_pickled_transfer(self):
        import pickle

        from repro.ml.optim import ConstantSchedule, SgdUpdateRule

        rng = np.random.default_rng(7)
        initial = ParamSet({
            "w": rng.normal(size=(4, 3)),
            "b": rng.normal(size=(3,)),
        })
        gradients = [
            ParamSet({
                "w": rng.normal(size=(4, 3)),
                "b": rng.normal(size=(3,)),
            })
            for _ in range(20)
        ]

        # Reference: the old control+data-over-queue path — every payload
        # round-trips through pickle, server applies to its own copy.
        reference = initial.copy()
        queue_rule = SgdUpdateRule(ConstantSchedule(0.1))
        for grad in gradients:
            wire = pickle.loads(pickle.dumps(grad))
            queue_rule.apply(reference, wire)

        # Zero-copy: gradients cross through a fenced shm slot, the server
        # applies straight from the slot's backing onto the live store.
        param_store = ShmParamStore.create(initial)
        grad_store = ShmParamStore.create(initial.zeros_like())
        try:
            shm_rule = SgdUpdateRule(ConstantSchedule(0.1))
            params = param_store.backing()
            version = 0
            for grad in gradients:
                grad_store.write(grad, version)
                assert grad_store.version == version
                version += 1
                with param_store.write_fence(version):
                    shm_rule.apply(params, grad_store.backing())
            snapshot, final_version = param_store.read()
            assert final_version == len(gradients)
            for key in reference.keys():
                np.testing.assert_array_equal(snapshot[key], reference[key])
        finally:
            for s in (param_store, grad_store):
                s.close()
                s.unlink()


class TestLifecycle:
    def test_closed_segment_rejects_access(self):
        seg = ShmArraySegment.create("w", np.zeros(3))
        try:
            seg.array[...] = 1.0
            seg.close()
            with pytest.raises(ValueError, match="closed"):
                _ = seg.array
        finally:
            seg.unlink()

    def test_scalar_value_gets_nonzero_segment(self):
        seg = ShmArraySegment.create("s", np.array(3.0))
        try:
            assert seg.array.shape == ()
            assert float(seg.array) == 3.0
        finally:
            seg.close()
            seg.unlink()


class TestCounters:
    """Regression coverage for the exported contention counters."""

    def test_fresh_store_starts_at_zero(self, store):
        assert store.counters() == {
            "reads": 0, "torn_read_retries": 0, "fence_waits": 0,
        }

    def test_clean_reads_count_only_reads(self, store):
        store.read()
        store.read()
        counters = store.counters()
        assert counters["reads"] == 2
        assert counters["torn_read_retries"] == 0
        assert counters["fence_waits"] == 0

    def test_counters_returns_a_copy(self, store):
        store.counters()["reads"] = 99
        assert store.counters()["reads"] == 0

    def test_torn_reads_and_fence_waits_are_counted(self, store, monkeypatch):
        import repro.ps.shm as shm_mod

        # Shrink the retry budget so the in-flight-write case resolves in
        # microseconds instead of the production ~1 s patience.
        monkeypatch.setattr(shm_mod, "_MAX_READ_ATTEMPTS", 20)
        monkeypatch.setattr(shm_mod, "_RETRY_SLEEP_S", 1e-5)
        fence_ctx = store.write_fence(1)
        fence_ctx.__enter__()  # seqlock odd: every read observes a torn write
        try:
            with pytest.raises(RuntimeError, match="consistent"):
                store.read()
        finally:
            fence_ctx.__exit__(None, None, None)
        counters = store.counters()
        assert counters["torn_read_retries"] == 20
        assert counters["fence_waits"] == 20 - shm_mod._SPIN_ATTEMPTS
        assert counters["reads"] == 0
        # Once the writer finishes the reader recovers and counts a read.
        store.read()
        assert store.counters()["reads"] == 1

    def test_version_probe_shares_the_same_counters(self, store, monkeypatch):
        import repro.ps.shm as shm_mod

        monkeypatch.setattr(shm_mod, "_MAX_READ_ATTEMPTS", 18)
        monkeypatch.setattr(shm_mod, "_RETRY_SLEEP_S", 1e-5)
        fence_ctx = store.write_fence(1)
        fence_ctx.__enter__()
        try:
            with pytest.raises(RuntimeError, match="consistent"):
                _ = store.version
        finally:
            fence_ctx.__exit__(None, None, None)
        counters = store.counters()
        assert counters["torn_read_retries"] == 18
        assert counters["fence_waits"] == 18 - shm_mod._SPIN_ATTEMPTS
