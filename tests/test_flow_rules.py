"""Fixture tests for the FLOW-* rule pack.

Each rule gets true positives (including at least one exception-edge /
``try``/``finally`` case), true negatives, and a suppression check, all
run through ``lint_source`` exactly like the real engine runs files.
"""

import json
import textwrap

import pytest

from repro.analysis.engine import lint_source
from repro.analysis.rules import RULE_PACKS, default_rules, rules_for
from repro.cli import main

ZONE = "repro.runtime.fixture"


def _lint(source, module=ZONE, rule_ids=None, packs=("flow",)):
    findings = lint_source(
        textwrap.dedent(source),
        module=module,
        rules=rules_for(rule_ids=rule_ids, packs=None if rule_ids else packs),
    )
    return [f for f in findings if not f.suppressed]


def _ids(findings):
    return [f.rule_id for f in findings]


# ----------------------------------------------------------------------
# FLOW-RELEASE
# ----------------------------------------------------------------------
class TestFlowRelease:
    def test_tp_exception_edge_between_acquire_and_release(self):
        # work() raising unwinds past the release: the classic leak the
        # syntactic rules cannot see.
        findings = _lint('''
            def f():
                lock.acquire()
                work()
                lock.release()
        ''', rule_ids=["FLOW-RELEASE"])
        assert _ids(findings) == ["FLOW-RELEASE"]
        assert "exception path" in findings[0].message
        assert findings[0].flow_path  # the witness path is attached

    def test_tp_early_return_skips_release(self):
        findings = _lint('''
            def f(x):
                self._lock.acquire()
                if x:
                    return None
                self._lock.release()
                return x
        ''', rule_ids=["FLOW-RELEASE"])
        assert _ids(findings) == ["FLOW-RELEASE"]
        # witness runs acquire -> branch -> return
        assert findings[0].flow_path == (3, 4, 5)

    def test_tp_file_opened_without_close_on_raise(self):
        findings = _lint('''
            def read(path):
                handle = open(path)
                data = handle.read()
                handle.close()
                return data
        ''', rule_ids=["FLOW-RELEASE"])
        assert _ids(findings) == ["FLOW-RELEASE"]

    def test_tn_try_finally_releases_on_all_paths(self):
        findings = _lint('''
            def f(x):
                lock.acquire()
                try:
                    if x:
                        return early()
                    work()
                finally:
                    lock.release()
        ''', rule_ids=["FLOW-RELEASE"])
        assert findings == []

    def test_tn_with_statement_is_safe_by_construction(self):
        findings = _lint('''
            def read(path):
                with open(path) as handle:
                    return handle.read()
        ''', rule_ids=["FLOW-RELEASE"])
        assert findings == []

    def test_tn_returned_handle_transfers_ownership(self):
        findings = _lint('''
            def open_writer(path):
                handle = open(path)
                return handle
        ''', rule_ids=["FLOW-RELEASE"])
        assert findings == []

    def test_tn_wrapper_methods_are_exempt(self):
        # Delegation wrappers (TracedLock-style) acquire on behalf of a
        # caller; the release lives in the paired method.
        findings = _lint('''
            class TracedLock:
                def acquire(self):
                    self._inner.acquire()

                def __enter__(self):
                    self._inner.acquire()
                    return self
        ''', rule_ids=["FLOW-RELEASE"])
        assert findings == []

    def test_tn_fire_and_forget_thread_not_tracked(self):
        # start() with no join anywhere in the function is a deliberate
        # daemon pattern, not a leak.
        findings = _lint('''
            def spawn(worker):
                worker.start()
        ''', rule_ids=["FLOW-RELEASE"])
        assert findings == []

    def test_tp_started_thread_with_conditional_join(self):
        findings = _lint('''
            def run(worker, flag):
                worker.start()
                if flag:
                    worker.join()
        ''', rule_ids=["FLOW-RELEASE"])
        assert _ids(findings) == ["FLOW-RELEASE"]

    def test_suppression_waives_the_finding(self):
        findings = _lint('''
            def f():
                # held across the callback on purpose; released by close()
                lock.acquire()  # repro: allow[FLOW-RELEASE] handoff to close()
                work()
        ''', rule_ids=["FLOW-RELEASE"])
        assert findings == []


# ----------------------------------------------------------------------
# FLOW-BLOCKING
# ----------------------------------------------------------------------
class TestFlowBlocking:
    def test_tp_sleep_reachable_from_async_def_transitively(self):
        findings = _lint('''
            import time

            async def handler():
                helper()

            def helper():
                time.sleep(0.1)
        ''', rule_ids=["FLOW-BLOCKING"])
        assert _ids(findings) == ["FLOW-BLOCKING"]
        assert "time.sleep" in findings[0].message
        # call chain: handler's call line, then the blocking line
        assert findings[0].flow_path == (5, 8)

    def test_tp_untimed_queue_get_in_tap_callback(self):
        findings = _lint('''
            def _tap(event):
                payload = event_queue.get()

            def setup(sim):
                sim.install_tap(_tap)
        ''', rule_ids=["FLOW-BLOCKING"])
        assert _ids(findings) == ["FLOW-BLOCKING"]
        assert "tap registered" in findings[0].message

    def test_tp_zero_arg_join_in_async(self):
        findings = _lint('''
            async def shutdown(worker):
                worker.join()
        ''', rule_ids=["FLOW-BLOCKING"])
        assert _ids(findings) == ["FLOW-BLOCKING"]

    def test_tn_sleep_in_plain_sync_function(self):
        findings = _lint('''
            import time

            def pacer():
                time.sleep(0.1)
        ''', rule_ids=["FLOW-BLOCKING"])
        assert findings == []

    def test_tn_timed_variants_are_fine(self):
        findings = _lint('''
            async def drain(q, worker, ev):
                q.request_queue.get(timeout=0.5)
                worker.join(timeout=1.0)
                ev.wait(timeout=2.0)
                ",".join(["a", "b"])
        ''', rule_ids=["FLOW-BLOCKING"])
        assert findings == []


# ----------------------------------------------------------------------
# FLOW-EXC
# ----------------------------------------------------------------------
SCHED = "repro.core.scheduler"


class TestFlowExc:
    def test_tp_undeclared_raise_in_root(self):
        findings = _lint('''
            class SpecSyncScheduler:
                def handle_notify(self, worker_id):
                    if worker_id < 0:
                        raise ValueError("bad id")
        ''', module=SCHED, rule_ids=["FLOW-EXC"])
        assert _ids(findings) == ["FLOW-EXC"]
        assert "ValueError" in findings[0].message

    def test_tp_raise_in_helper_reached_from_root(self):
        findings = _lint('''
            class SpecSyncScheduler:
                def _check_resync(self, worker_id):
                    self._send(worker_id)

                def _send(self, worker_id):
                    raise RuntimeError("socket gone")
        ''', module=SCHED, rule_ids=["FLOW-EXC"])
        assert _ids(findings) == ["FLOW-EXC"]
        # chain: call site in _check_resync, then the raise line
        assert findings[0].flow_path == (4, 7)

    def test_tn_declared_in_docstring_raises_section(self):
        findings = _lint('''
            class SpecSyncScheduler:
                def handle_notify(self, worker_id):
                    """Handle one notify.

                    Raises:
                        ValueError: when the id is out of range.
                    """
                    if worker_id < 0:
                        raise ValueError("bad id")
        ''', module=SCHED, rule_ids=["FLOW-EXC"])
        assert findings == []

    def test_tn_caught_at_the_call_site(self):
        findings = _lint('''
            class SpecSyncScheduler:
                def handle_notify(self, worker_id):
                    try:
                        self._send(worker_id)
                    except RuntimeError:
                        self._fallback()

                def _send(self, worker_id):
                    raise RuntimeError("socket gone")

                def _fallback(self):
                    pass
        ''', module=SCHED, rule_ids=["FLOW-EXC"])
        assert findings == []

    def test_tn_out_of_scope_module_ignored(self):
        findings = _lint('''
            def handle_notify(worker_id):
                raise ValueError("not the re-sync path")
        ''', module="repro.utils.misc", rule_ids=["FLOW-EXC"])
        assert findings == []


# ----------------------------------------------------------------------
# FLOW-DEAD
# ----------------------------------------------------------------------
class TestFlowDead:
    def test_tp_code_after_return(self):
        findings = _lint('''
            def f(x):
                return x
                cleanup()
        ''', rule_ids=["FLOW-DEAD"])
        assert _ids(findings) == ["FLOW-DEAD"]
        assert "unreachable" in findings[0].message

    def test_tp_constant_false_branch(self):
        findings = _lint('''
            def f(x):
                if False:
                    impossible()
                return x
        ''', rule_ids=["FLOW-DEAD"])
        assert _ids(findings) == ["FLOW-DEAD"]

    def test_tp_duplicate_dispatch_arm(self):
        findings = _lint('''
            from repro.core.messages import MessageKind

            def dispatch(kind):
                if kind == MessageKind.PUSH:
                    return 1
                elif kind == MessageKind.PUSH:
                    return 2
        ''', rule_ids=["FLOW-DEAD"])
        assert _ids(findings) == ["FLOW-DEAD"]
        assert "already handled" in findings[0].message
        assert findings[0].flow_path == (5, 7)

    def test_tp_arm_outside_model_alphabet(self):
        findings = _lint('''
            from repro.core.messages import MessageKind

            MODEL_ALPHABET = (MessageKind.PUSH,)

            def dispatch(kind):
                if kind == MessageKind.PUSH:
                    return 1
                elif kind == MessageKind.SHUTDOWN:
                    return 2
        ''', rule_ids=["FLOW-DEAD"])
        assert _ids(findings) == ["FLOW-DEAD"]
        assert "MODEL_ALPHABET" in findings[0].message

    def test_tn_reachable_branches_and_alphabet_covered(self):
        findings = _lint('''
            from repro.core.messages import MessageKind

            MODEL_ALPHABET = (MessageKind.PUSH, MessageKind.NOTIFY)

            def dispatch(kind, x):
                if x:
                    return None
                if kind == MessageKind.PUSH:
                    return 1
                elif kind == MessageKind.NOTIFY:
                    return 2
        ''', rule_ids=["FLOW-DEAD"])
        assert findings == []

    def test_tn_no_alphabet_in_batch_skips_alphabet_check(self):
        # Linting a subset of the tree must not false-positive on kinds
        # the (absent) model file would have vouched for.
        findings = _lint('''
            from repro.core.messages import MessageKind

            def dispatch(kind):
                if kind == MessageKind.ANYTHING:
                    return 1
        ''', rule_ids=["FLOW-DEAD"])
        assert findings == []

    def test_tn_try_finally_blocks_all_reachable(self):
        # finally duplication must not orphan blocks and self-report.
        findings = _lint('''
            def f(x):
                try:
                    if x:
                        return early()
                    work()
                finally:
                    cleanup()
                return late()
        ''', rule_ids=["FLOW-DEAD"])
        assert findings == []


# ----------------------------------------------------------------------
# Registry + CLI filters
# ----------------------------------------------------------------------
class TestSelection:
    def test_flow_pack_registered(self):
        assert set(RULE_PACKS) == {
            "determinism", "protocol", "concurrency", "flow", "perf",
            "ownership",
        }
        flow_ids = {cls.rule_id for cls in RULE_PACKS["flow"]}
        assert flow_ids == {
            "FLOW-RELEASE", "FLOW-BLOCKING", "FLOW-EXC", "FLOW-DEAD",
        }

    def test_default_rules_ids_unique(self):
        ids = [r.rule_id for r in default_rules()]
        assert len(ids) == len(set(ids))
        assert len(ids) >= 18

    def test_rules_for_unions_rule_and_pack(self):
        rules = rules_for(rule_ids=["DET-WALLCLOCK"], packs=["flow"])
        ids = {r.rule_id for r in rules}
        assert "DET-WALLCLOCK" in ids
        assert "FLOW-RELEASE" in ids
        assert len(ids) == 5

    def test_rules_for_rejects_unknown_names(self):
        with pytest.raises(ValueError):
            rules_for(packs=["flows"])
        with pytest.raises(ValueError):
            rules_for(rule_ids=["FLOW-NOPE"])

    def test_cli_rule_filter(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(textwrap.dedent('''
            def f():
                lock.acquire()
                work()
                lock.release()
        '''))
        code = main(["lint", "--rule", "FLOW-RELEASE", "--fail-on", "warning",
                     str(bad)])
        assert code == 1
        out = capsys.readouterr().out
        assert "FLOW-RELEASE" in out
        # a disjoint pack sees nothing wrong with the same file
        code = main(["lint", "--pack", "determinism", "--fail-on", "warning",
                     str(bad)])
        assert code == 0

    def test_cli_unknown_pack_is_an_error(self, capsys):
        assert main(["lint", "--pack", "nope"]) == 2
        assert "unknown pack" in capsys.readouterr().err

    def test_cli_json_carries_flow_path_and_output_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(textwrap.dedent('''
            def f(x):
                lock.acquire()
                if x:
                    return None
                lock.release()
                return x
        '''))
        report = tmp_path / "findings.json"
        code = main(["lint", "--pack", "flow", "--format", "json",
                     "--output", str(report), str(bad)])
        assert code == 1  # default gate fails on any unsuppressed finding
        payload = json.loads(capsys.readouterr().out)
        (finding,) = payload["findings"]
        assert finding["rule_id"] == "FLOW-RELEASE"
        assert finding["flow_path"] == [3, 4, 5]
        # --output wrote the same document
        assert json.loads(report.read_text()) == payload

    def test_text_reporter_prints_path_compactly(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(textwrap.dedent('''
            def f(x):
                lock.acquire()
                if x:
                    return None
                lock.release()
                return x
        '''))
        main(["lint", "--pack", "flow", str(bad)])
        out = capsys.readouterr().out
        assert "(path: L3 -> L4 -> L5)" in out
