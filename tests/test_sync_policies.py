"""Tests for the baseline synchronization schemes (ASP/BSP/SSP/naïve wait).

These run small end-to-end simulations on the tiny workload and assert the
defining invariant of each scheme from the recorded traces.
"""

import pytest

from repro import AspPolicy, BspPolicy, ClusterSpec, NaiveWaitingPolicy, SspPolicy
from repro.workloads import tiny_workload


CLUSTER = ClusterSpec.homogeneous(5)


def run(policy, horizon=40.0, seed=0, cluster=CLUSTER):
    return tiny_workload().run(cluster, policy, seed=seed, horizon_s=horizon)


class TestAsp:
    def test_name(self):
        assert AspPolicy().name == "asp"

    def test_no_waiting_no_aborts(self):
        result = run(AspPolicy())
        assert result.total_aborts == 0
        assert result.policy_summary == {}

    def test_workers_progress_independently(self):
        # With jitter, completed-iteration counts should differ across workers.
        result = run(AspPolicy(), horizon=60.0)
        iterations = [w.iterations for w in result.worker_stats]
        assert max(iterations) > 0


class TestBsp:
    def test_name(self):
        assert BspPolicy().name == "bsp"

    def test_lockstep_invariant(self):
        """At every push, no worker is ever more than 1 iteration ahead."""
        result = run(BspPolicy())
        progress = {w: 0 for w in range(CLUSTER.num_workers)}
        for event in result.traces.pushes:
            progress[event.worker_id] += 1
            spread = max(progress.values()) - min(progress.values())
            assert spread <= 1, f"BSP barrier violated: spread {spread}"

    def test_all_workers_finish_same_round_count(self):
        result = run(BspPolicy())
        iterations = [w.iterations for w in result.worker_stats]
        assert max(iterations) - min(iterations) <= 1

    def test_bsp_slower_than_asp_in_iterations(self):
        asp = run(AspPolicy(), seed=2)
        bsp = run(BspPolicy(), seed=2)
        assert bsp.total_iterations < asp.total_iterations

    def test_zero_staleness_within_snapshot(self):
        """BSP gradients are computed on the snapshot of the previous round:
        staleness is bounded by the number of workers (same-round pushes)."""
        result = run(BspPolicy())
        for event in result.traces.pushes:
            assert event.staleness <= CLUSTER.num_workers - 1


class TestSsp:
    def test_name_carries_bound(self):
        assert SspPolicy(staleness_bound=4).name == "ssp(s=4)"

    def test_bound_invariant(self):
        bound = 2
        result = run(SspPolicy(staleness_bound=bound))
        progress = {w: 0 for w in range(CLUSTER.num_workers)}
        for event in result.traces.pushes:
            progress[event.worker_id] += 1
            spread = max(progress.values()) - min(progress.values())
            # A worker at most `bound` ahead may *start* another iteration,
            # so the completed spread can reach bound + 1.
            assert spread <= bound + 1, f"SSP bound violated: spread {spread}"

    def test_bound_zero_equals_bsp_lockstep(self):
        result = run(SspPolicy(staleness_bound=0))
        progress = {w: 0 for w in range(CLUSTER.num_workers)}
        for event in result.traces.pushes:
            progress[event.worker_id] += 1
            assert max(progress.values()) - min(progress.values()) <= 1

    def test_huge_bound_equals_asp_throughput(self):
        asp = run(AspPolicy(), seed=4)
        ssp = run(SspPolicy(staleness_bound=10**6), seed=4)
        assert ssp.total_iterations == asp.total_iterations

    def test_negative_bound_rejected(self):
        with pytest.raises(ValueError):
            SspPolicy(staleness_bound=-1)

    def test_summary_reports_waits(self):
        result = run(SspPolicy(staleness_bound=0))
        assert "bound_waits" in result.policy_summary


class TestNaiveWaiting:
    def test_name_carries_delay(self):
        assert NaiveWaitingPolicy(1.0).name == "naive-wait(1s)"

    def test_zero_delay_equals_asp(self):
        asp = run(AspPolicy(), seed=5)
        naive = run(NaiveWaitingPolicy(0.0), seed=5)
        assert naive.total_iterations == asp.total_iterations
        assert naive.curve.final_loss == pytest.approx(asp.curve.final_loss)

    def test_delay_reduces_iteration_throughput(self):
        asp = run(AspPolicy(), seed=6, horizon=60.0)
        naive = run(NaiveWaitingPolicy(0.5), seed=6, horizon=60.0)
        assert naive.total_iterations < asp.total_iterations

    def test_delay_reduces_staleness(self):
        """The Section III observation: deferring pulls uncovers updates
        — pull-time versions are fresher, so staleness at apply drops."""
        asp = run(AspPolicy(), seed=7, horizon=80.0)
        naive = run(NaiveWaitingPolicy(0.4), seed=7, horizon=80.0)
        assert naive.mean_staleness < asp.mean_staleness

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            NaiveWaitingPolicy(-1.0)

    def test_summary_totals_delay(self):
        result = run(NaiveWaitingPolicy(0.5), horizon=20.0)
        assert result.policy_summary["delay_s"] == 0.5
        assert result.policy_summary["total_delay_s"] > 0
