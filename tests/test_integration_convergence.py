"""Cross-scheme integration tests on a convex problem.

Softmax regression is convex: whatever the synchronization scheme does to
the *order* of updates, every scheme must end up near the same optimum.
These tests pin that down, plus accuracy recording and throughput ordering.
"""

import pytest

from repro import (
    AspPolicy,
    BspPolicy,
    ClusterSpec,
    NaiveWaitingPolicy,
    SpecSyncPolicy,
    SspPolicy,
)
from repro.workloads import tiny_workload

CLUSTER = ClusterSpec.homogeneous(5)

ALL_POLICIES = [
    ("asp", AspPolicy),
    ("bsp", BspPolicy),
    ("ssp", lambda: SspPolicy(2)),
    ("naive", lambda: NaiveWaitingPolicy(0.3)),
    ("specsync", SpecSyncPolicy.adaptive),
]


@pytest.fixture(scope="module")
def results():
    workload = tiny_workload()
    return {
        name: workload.run(CLUSTER, factory(), seed=4, horizon_s=150.0)
        for name, factory in ALL_POLICIES
    }


class TestConvexConsensus:
    def test_all_schemes_converge_to_similar_loss(self, results):
        finals = {name: r.final_loss for name, r in results.items()}
        best = min(finals.values())
        worst = max(finals.values())
        assert worst < 0.4, f"some scheme failed to converge: {finals}"
        assert worst - best < 0.15, f"schemes disagree on the optimum: {finals}"

    def test_all_schemes_make_progress(self, results):
        # The first eval already reflects a few updates, so the bar is a
        # solid improvement over it, not over the raw initial loss.
        for name, result in results.items():
            assert result.final_loss < result.curve[0].loss * 0.65, name

    def test_throughput_ordering(self, results):
        """ASP does the most iterations; BSP the fewest (barrier waits);
        the others land in between."""
        iters = {name: r.total_iterations for name, r in results.items()}
        assert iters["asp"] >= iters["ssp"] >= iters["bsp"]
        assert iters["asp"] >= iters["naive"]
        assert iters["asp"] >= iters["specsync"] * 0.99

    def test_staleness_ordering(self, results):
        """BSP's in-round staleness is bounded by m−1; ASP's roams higher
        with waiting/speculation in between."""
        staleness = {name: r.mean_staleness for name, r in results.items()}
        assert staleness["naive"] < staleness["asp"]
        assert staleness["specsync"] <= staleness["asp"] + 0.5


class TestAccuracyRecording:
    def test_accuracy_recorded_when_requested(self):
        workload = tiny_workload()
        result = workload.run(
            CLUSTER, AspPolicy(), seed=0, horizon_s=40.0, record_accuracy=True
        )
        accuracies = [p.accuracy for p in result.curve]
        assert all(a is not None for a in accuracies)
        assert all(0.0 <= a <= 1.0 for a in accuracies)
        # Softmax on separable data: accuracy should end up high.
        assert accuracies[-1] > 0.7

    def test_accuracy_absent_by_default(self):
        workload = tiny_workload()
        result = workload.run(CLUSTER, AspPolicy(), seed=0, horizon_s=20.0)
        assert all(p.accuracy is None for p in result.curve)

    def test_accuracy_improves_with_training(self):
        workload = tiny_workload()
        result = workload.run(
            CLUSTER, AspPolicy(), seed=0, horizon_s=80.0, record_accuracy=True
        )
        assert result.curve[-1].accuracy > result.curve[0].accuracy


class TestEvalCadence:
    def test_eval_points_spaced_by_interval(self):
        workload = tiny_workload()
        result = workload.run(CLUSTER, AspPolicy(), seed=0, horizon_s=30.0)
        times = result.curve.times()
        diffs = [b - a for a, b in zip(times, times[1:])]
        assert all(d == pytest.approx(workload.eval_interval_s) for d in diffs)

    def test_eval_count_matches_horizon(self):
        workload = tiny_workload()
        result = workload.run(CLUSTER, AspPolicy(), seed=0, horizon_s=30.0)
        expected = int(30.0 / workload.eval_interval_s)
        assert abs(len(result.curve) - expected) <= 1
