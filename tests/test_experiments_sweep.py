"""Tests for the sweep utility."""

import pytest

from repro import AspPolicy, ClusterSpec, SpecSyncPolicy
from repro.experiments.sweep import (
    SweepCell,
    SweepResult,
    run_sweep,
    speedup_summary,
)
from repro.workloads import tiny_workload


class TestSweepCell:
    def make(self, times=(100.0, 200.0, None)):
        return SweepCell(
            variant="v", scheme="s", seeds=(1, 2, 3),
            times_to_target=times,
            final_losses=(0.1, 0.2, 0.3),
            mean_staleness=(1.0, 2.0, 3.0),
        )

    def test_converged_fraction(self):
        assert self.make().converged_fraction == pytest.approx(2 / 3)

    def test_mean_ignores_non_converged(self):
        assert self.make().mean_time_to_target == pytest.approx(150.0)

    def test_all_failed(self):
        cell = self.make(times=(None, None, None))
        assert cell.mean_time_to_target is None
        assert cell.converged_fraction == 0.0

    def test_std_requires_two_samples(self):
        cell = self.make(times=(100.0, None, None))
        assert cell.std_time_to_target is None


class TestRunSweep:
    def test_grid_runs_all_cells(self):
        workload = tiny_workload()
        seen = []
        sweep = run_sweep(
            variants={"tiny": workload.with_overrides(default_horizon_s=30.0)},
            schemes={"asp": AspPolicy, "specsync": SpecSyncPolicy.adaptive},
            cluster=ClusterSpec.homogeneous(3),
            seeds=(1, 2),
            early_stop=False,
            on_result=lambda v, s, seed, r: seen.append((v, s, seed)),
        )
        assert len(sweep.cells) == 2
        assert len(seen) == 4
        assert sweep.cell("tiny", "asp").seeds == (1, 2)

    def test_render(self):
        workload = tiny_workload().with_overrides(default_horizon_s=20.0)
        sweep = run_sweep(
            variants={"tiny": workload},
            schemes={"asp": AspPolicy},
            cluster=ClusterSpec.homogeneous(2),
            seeds=(1,),
        )
        text = sweep.render()
        assert "tiny" in text and "asp" in text

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            run_sweep({}, {"asp": AspPolicy}, ClusterSpec.homogeneous(2))

    def test_missing_cell_raises(self):
        with pytest.raises(KeyError):
            SweepResult().cell("x", "y")


class TestSpeedupSummary:
    def test_speedups_relative_to_baseline(self):
        sweep = SweepResult(cells=[
            SweepCell("v", "base", (1,), (400.0,), (0.1,), (1.0,)),
            SweepCell("v", "fast", (1,), (100.0,), (0.1,), (1.0,)),
            SweepCell("v", "dead", (1,), (None,), (0.9,), (1.0,)),
        ])
        summary = speedup_summary(sweep, "base", "v")
        assert summary["base"] == pytest.approx(1.0)
        assert summary["fast"] == pytest.approx(4.0)
        assert summary["dead"] is None
