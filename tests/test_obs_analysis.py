"""Tests for the causal trace analytics (`repro.obs.analysis`).

Three layers:

* a synthetic-graph unit suite over hand-built trace dicts (attribution
  tiling, aborted-span splitting, concurrent flows, malformed causality);
* a golden analytics file from a seeded DES run of all four schemes —
  byte-identical JSON, regenerate intentional changes with::

      REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_obs_analysis.py

* a multiprocess-backend round trip (wall-clock trace → causal graph).
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro import ClusterSpec
from repro.cluster.compute import ComputeTimeModel
from repro.core.hyperparams import SpecSyncHyperparams
from repro.core.tuning import FixedTuner
from repro.experiments.common import scheme_catalog
from repro.ml import SoftmaxRegressionModel, SyntheticImageDataset
from repro.ml.optim import ConstantSchedule, SgdUpdateRule
from repro.obs import TraceCollector, collecting, to_chrome_trace
from repro.obs.analysis import (
    ATTRIBUTION_CATEGORIES,
    AnalysisError,
    CausalGraph,
    analysis_bench_payload,
    analyze_trace,
    render_analysis_comparison,
    render_analysis_text,
)
from repro.workloads import tiny_workload

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_analysis.json"

_US = 1_000_000

#: the four schemes the golden run races (paper's headline comparison set)
GOLDEN_SCHEMES = ("original", "ssp", "cherrypick", "adaptive")


# ----------------------------------------------------------------------
# Synthetic trace construction
# ----------------------------------------------------------------------
def _process(pid, name):
    return {"ph": "M", "pid": pid, "tid": 0, "ts": 0,
            "name": "process_name", "args": {"name": name}}


def _thread(pid, tid, name):
    return {"ph": "M", "pid": pid, "tid": tid, "ts": 0,
            "name": "thread_name", "args": {"name": name}}


def _span(tid, name, start_s, dur_s, cat="engine", args=None, pid=1):
    return {"ph": "X", "pid": pid, "tid": tid, "ts": start_s * _US,
            "dur": dur_s * _US, "name": name, "cat": cat,
            "args": args or {}}


def _instant(tid, name, ts_s, cat="mark", args=None, pid=1):
    return {"ph": "i", "pid": pid, "tid": tid, "ts": ts_s * _US, "s": "t",
            "name": name, "cat": cat, "args": args or {}}


def _flow_start(tid, flow_id, ts_s, args=None, pid=1):
    return {"ph": "s", "pid": pid, "tid": tid, "ts": ts_s * _US,
            "id": flow_id, "name": "abort", "cat": "abort",
            "args": args or {}}


def _flow_finish(tid, flow_id, ts_s, pid=1):
    return {"ph": "f", "bp": "e", "pid": pid, "tid": tid, "ts": ts_s * _US,
            "id": flow_id, "name": "abort", "cat": "abort", "args": {}}


def _layout():
    """Metadata: virtual-time process with two workers + infrastructure."""
    return [
        _process(1, "virtual time"),
        _thread(1, 1, "worker-0"),
        _thread(1, 2, "worker-1"),
        _thread(1, 10, "server"),
        _thread(1, 11, "scheduler"),
    ]


def _trace(events):
    return {
        "traceEvents": _layout() + events,
        "otherData": {"format_version": 2},
        "displayTimeUnit": "ms",
    }


class TestCausalGraph:
    def test_rejects_non_trace_objects(self):
        with pytest.raises(AnalysisError, match="traceEvents"):
            CausalGraph.from_trace({"foo": 1})

    def test_rejects_events_on_unnamed_threads(self):
        trace = _trace([_span(99, "compute", 0.0, 1.0)])
        with pytest.raises(AnalysisError, match="unnamed thread"):
            CausalGraph.from_trace(trace)

    def test_missing_flow_parent_is_a_hard_error(self):
        trace = _trace([_flow_finish(1, 7, 2.0)])
        with pytest.raises(AnalysisError, match="missing parent"):
            CausalGraph.from_trace(trace)

    def test_dangling_flow_start_is_a_hard_error(self):
        trace = _trace([_flow_start(2, 7, 1.0)])
        with pytest.raises(AnalysisError, match="never finished"):
            CausalGraph.from_trace(trace)

    def test_duplicate_flow_start_is_a_hard_error(self):
        trace = _trace([_flow_start(2, 7, 1.0), _flow_start(2, 7, 1.5)])
        with pytest.raises(AnalysisError, match="duplicate"):
            CausalGraph.from_trace(trace)

    def test_concurrent_flows_resolve_by_id(self):
        # Two arrows in flight at once, closed out of start order.
        trace = _trace([
            _flow_start(2, 1, 1.0),
            _flow_start(11, 2, 1.5),
            _flow_finish(1, 2, 2.0),
            _flow_finish(1, 1, 2.5),
        ])
        graph = CausalGraph.from_trace(trace)
        (run,) = graph.runs
        flows = sorted(run.flows, key=lambda f: f.src_ts)
        assert [(f.src_track, f.dst_ts) for f in flows] == [
            ("worker-1", 2.5), ("scheduler", 2.0),
        ]

    def test_run_segmentation_on_markers(self):
        trace = _trace([
            _instant(10, "run_start", 0.0, cat="run", args={"scheme": "a"}),
            _span(1, "compute", 0.0, 1.0),
            _instant(10, "run_end", 1.0, cat="run", args={"total_aborts": 0}),
            _instant(10, "run_start", 0.0, cat="run", args={"scheme": "b"}),
            _span(1, "compute", 0.0, 2.0),
        ])
        graph = CausalGraph.from_trace(trace)
        assert [run.meta["scheme"] for run in graph.runs] == ["a", "b"]
        assert graph.runs[0].end_meta == {"total_aborts": 0}
        assert graph.runs[0].window() == (0.0, 1.0)
        assert graph.runs[1].window() == (0.0, 2.0)  # run_end cut off

    def test_legacy_trace_gets_one_implicit_segment(self):
        trace = _trace([_span(1, "compute", 1.0, 2.0)])
        graph = CausalGraph.from_trace(trace)
        (run,) = graph.runs
        assert not run.explicit
        assert run.domain == "virtual"
        assert run.window() == (1.0, 3.0)


class TestAttribution:
    def _analyze_one(self, events):
        graph = CausalGraph.from_trace(_trace(events))
        (run,) = graph.runs
        return analyze_trace(_trace(events))["runs"][0], run

    def test_categories_tile_the_window(self):
        run, _ = self._analyze_one([
            _span(1, "pull", 0.0, 1.0),
            _span(1, "compute", 1.0, 3.0),
            # gap [4, 5) — waiting on the barrier
            _span(1, "push", 5.0, 1.0),
        ])
        path = run["critical_path"]
        assert path["track"] == "worker-0"
        assert path["by_category"] == {
            "compute": 3.0, "network": 2.0, "sync_wait": 1.0,
            "scheduler_decision": 0.0, "abort_wasted_work": 0.0,
        }
        assert sum(path["by_category"].values()) == pytest.approx(
            path["total_s"]
        )

    def test_aborted_compute_splits_at_the_decision_arrow(self):
        run, _ = self._analyze_one([
            _span(1, "compute", 1.0, 4.0, args={"aborted": True}),
            _flow_start(11, 1, 3.0, args={"decision": True, "peer_pushes": 2}),
            _flow_finish(1, 1, 5.0),
        ])
        by_cat = run["critical_path"]["by_category"]
        assert by_cat["abort_wasted_work"] == pytest.approx(2.0)
        assert by_cat["scheduler_decision"] == pytest.approx(2.0)
        assert by_cat["compute"] == 0.0

    def test_aborted_compute_without_arrow_is_all_wasted(self):
        run, _ = self._analyze_one([
            _span(1, "compute", 0.0, 4.0, args={"aborted": True}),
        ])
        by_cat = run["critical_path"]["by_category"]
        assert by_cat["abort_wasted_work"] == pytest.approx(4.0)
        assert by_cat["scheduler_decision"] == 0.0

    def test_critical_track_is_the_makespan_worker(self):
        run, _ = self._analyze_one([
            _span(1, "compute", 0.0, 2.0),
            _span(2, "compute", 0.0, 5.0),
        ])
        assert run["critical_path"]["track"] == "worker-1"
        # the shorter worker's tail is sync-wait in the covering view
        w0 = run["per_worker"]["worker-0"]["by_category"]
        assert w0["sync_wait"] == pytest.approx(3.0)

    def test_epoch_boundaries_split_the_attribution(self):
        run, _ = self._analyze_one([
            _span(1, "compute", 0.0, 4.0),
            _instant(11, "epoch_retuned", 1.0, cat="tuning"),
        ])
        epochs = run["critical_path"]["epochs"]
        assert [e["by_category"]["compute"] for e in epochs] == [1.0, 3.0]

    def test_iteration_containers_are_skipped(self):
        run, _ = self._analyze_one([
            _span(1, "iteration", 0.0, 4.0, cat="iteration"),
            _span(1, "compute", 0.0, 4.0),
        ])
        assert run["critical_path"]["by_category"]["compute"] == 4.0


# ----------------------------------------------------------------------
# Golden analytics from a seeded DES run of all four schemes
# ----------------------------------------------------------------------
def _four_scheme_trace() -> dict:
    collector = TraceCollector()
    collector.metadata["workload"] = "tiny"
    collector.metadata["seed"] = 3
    catalog = scheme_catalog("tiny")
    with collecting(collector):
        for name in GOLDEN_SCHEMES:
            tiny_workload().run(
                ClusterSpec.homogeneous(3), catalog[name].make(),
                seed=3, horizon_s=30.0,
            )
    return to_chrome_trace(collector)


@pytest.fixture(scope="module")
def golden_analysis() -> dict:
    return analyze_trace(_four_scheme_trace())


class TestGoldenAnalytics:
    def test_byte_identical_analytics_json(self, golden_analysis):
        rendered = json.dumps(
            golden_analysis, indent=1, sort_keys=True
        ) + "\n"
        if os.environ.get("REPRO_REGEN_GOLDEN"):
            GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
            GOLDEN_PATH.write_text(rendered, encoding="utf-8")
        golden = GOLDEN_PATH.read_text(encoding="utf-8")
        assert rendered == golden, (
            "analytics drifted from tests/data/golden_analysis.json; if "
            "the change is intentional, regenerate with REPRO_REGEN_GOLDEN=1"
        )

    def test_one_run_per_scheme(self, golden_analysis):
        assert [r["scheme"] for r in golden_analysis["runs"]] == [
            "asp", "ssp(s=3)", "specsync-cherrypick", "specsync-adaptive",
        ]
        assert all(r["explicit"] for r in golden_analysis["runs"])

    def test_attribution_sums_to_run_duration(self, golden_analysis):
        # The acceptance invariant: critical-path categories cover the
        # virtual runtime to within 1%, on every scheme.
        for run in golden_analysis["runs"]:
            path = run["critical_path"]
            total = sum(path["by_category"].values())
            assert total == pytest.approx(path["total_s"], rel=0.01), (
                run["scheme"]
            )
            assert path["total_s"] == pytest.approx(
                run["duration_s"], rel=1e-9
            )
            for worker in run["per_worker"].values():
                assert sum(worker["by_category"].values()) == pytest.approx(
                    worker["total_s"], rel=0.01
                )

    def test_epochs_reaggregate_the_same_seconds(self, golden_analysis):
        for run in golden_analysis["runs"]:
            path = run["critical_path"]
            for category in ATTRIBUTION_CATEGORIES:
                from_epochs = sum(
                    e["by_category"][category] for e in path["epochs"]
                )
                assert from_epochs == pytest.approx(
                    path["by_category"][category], abs=1e-6
                ), (run["scheme"], category)

    def test_ledger_abort_counts_match_engine_totals(self, golden_analysis):
        for run in golden_analysis["runs"]:
            assert run["ledger"]["total_aborts"] == run["total_aborts"]
        by_scheme = {
            r["scheme"]: r["ledger"] for r in golden_analysis["runs"]
        }
        assert by_scheme["asp"]["total_aborts"] == 0
        assert by_scheme["specsync-adaptive"]["total_aborts"] > 0
        assert by_scheme["specsync-adaptive"]["total_aborted_compute_s"] > 0

    def test_abort_instants_carry_peer_push_counts(self, golden_analysis):
        adaptive = golden_analysis["runs"][-1]["ledger"]
        counts = [
            count
            for worker in adaptive["per_worker"].values()
            for count in worker["peer_push_counts"]
        ]
        assert counts, "adaptive run aborted but no peer-push counts"
        # Algorithm 2 fires at >= m * ABORT_RATE peer pushes; with m=3
        # the threshold is at least one peer push.
        assert all(count >= 1 for count in counts)

    def test_empirical_gain_agrees_with_analytic_in_sign_and_ranking(
        self, golden_analysis
    ):
        # The acceptance criterion: the ledger's realized freshness gains
        # and Algorithm 1's analytic ũ_i(Δ) on the reconstructed push
        # trace must agree in sign and in which worker benefits most.
        adaptive = golden_analysis["runs"][-1]["ledger"]
        empirical = adaptive["empirical_gain_by_worker"]
        analytic = adaptive["analytic_gain_by_worker"]
        assert set(empirical) == set(analytic) and empirical
        assert all(value >= 0 for value in empirical.values())
        assert all(value >= 0 for value in analytic.values())
        top_empirical = max(empirical, key=lambda w: empirical[w])
        top_analytic = max(analytic, key=lambda w: analytic[w])
        assert top_empirical == top_analytic

    def test_freshness_curve_present_for_every_run(self, golden_analysis):
        for run in golden_analysis["runs"]:
            curve = run["ledger"]["freshness_curve"]
            assert curve and len(curve) <= 32
            assert all(
                point["window_s"] > 0 for point in curve
            ), run["scheme"]

    def test_staleness_bound_detected_for_ssp(self, golden_analysis):
        by_scheme = {r["scheme"]: r["staleness"] for r in golden_analysis["runs"]}
        assert by_scheme["ssp(s=3)"]["bound"] == 3
        assert by_scheme["asp"]["bound"] is None
        stats = by_scheme["ssp(s=3)"]["per_worker"]
        assert stats and all(s["count"] > 0 for s in stats.values())

    def test_renderers_cover_every_run(self, golden_analysis):
        text = render_analysis_text(golden_analysis)
        for run in golden_analysis["runs"]:
            assert str(run["scheme"]) in text
        assert "speculation ledger" in text
        diff = render_analysis_comparison(golden_analysis, golden_analysis)
        assert "+0" in diff

    def test_bench_payload_loads_through_the_shared_gate(
        self, golden_analysis, tmp_path
    ):
        from repro.perfbench import compare_benchmarks, load_bench_payload

        payload = analysis_bench_payload(golden_analysis)
        path = tmp_path / "BENCH_analysis.json"
        path.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        loaded = load_bench_payload(str(path))
        findings = compare_benchmarks(loaded, loaded, new_path=str(path))
        assert findings == []
        adaptive = payload["benchmarks"]["analysis.run3.specsync-adaptive"]
        assert adaptive["metrics"]["total_aborts"]["value"] > 0
        assert all(
            m["kind"] == "count" for m in adaptive["metrics"].values()
        )


# ----------------------------------------------------------------------
# Multiprocess backend round trip (wall clock)
# ----------------------------------------------------------------------
class TestMultiprocessRoundTrip:
    def test_wall_clock_trace_reconstructs(self):
        from repro.runtime import MultiprocessRun

        dataset = SyntheticImageDataset(
            num_classes=3, feature_dim=8, num_samples=400,
            class_separation=3.0, warp=False, seed=0,
        )
        partitions = dataset.partition(2, np.random.default_rng(0))
        run = MultiprocessRun(
            model=SoftmaxRegressionModel(input_dim=8, num_classes=3),
            partitions=partitions,
            eval_batch=dataset.eval_batch(),
            update_rule=SgdUpdateRule(ConstantSchedule(0.2)),
            compute_model=ComputeTimeModel(mean_time_s=4.0, jitter_sigma=0.1),
            time_scale=0.004,
            tuner=FixedTuner(
                SpecSyncHyperparams(abort_time_s=0.008, abort_rate=0.3)
            ),
            seed=0,
        )
        collector = TraceCollector()
        with collecting(collector):
            result = run.run(0.5)
        assert result.total_iterations > 0
        trace = to_chrome_trace(collector)
        analysis = analyze_trace(trace)
        domains = {r["domain"] for r in analysis["runs"]}
        assert "wall" in domains
        for entry in analysis["runs"]:
            assert entry["duration_s"] > 0
            path = entry["critical_path"]
            if path["track"] is None:
                continue
            assert sum(path["by_category"].values()) == pytest.approx(
                path["total_s"], rel=0.01
            )
