"""Tests for server-side update rules and schedules."""

import numpy as np
import pytest

from repro.ml import ParamSet
from repro.ml.optim import (
    ConstantSchedule,
    SgdUpdateRule,
    StepDecaySchedule,
)


def params(value=1.0):
    return ParamSet({"w": np.array([value, value])})


def grad(value=1.0):
    return ParamSet({"w": np.array([value, value])})


class TestSchedules:
    def test_constant(self):
        sched = ConstantSchedule(0.1)
        assert sched.rate_at(0) == 0.1
        assert sched.rate_at(10**6) == 0.1

    def test_constant_validates(self):
        with pytest.raises(ValueError):
            ConstantSchedule(0.0)

    def test_step_decay_milestones(self):
        sched = StepDecaySchedule(initial_rate=1.0, milestones=(10, 20), decay=0.1)
        assert sched.rate_at(0) == 1.0
        assert sched.rate_at(9) == 1.0
        assert sched.rate_at(10) == pytest.approx(0.1)
        assert sched.rate_at(19) == pytest.approx(0.1)
        assert sched.rate_at(20) == pytest.approx(0.01)

    def test_step_decay_unsorted_rejected(self):
        with pytest.raises(ValueError):
            StepDecaySchedule(initial_rate=1.0, milestones=(20, 10))

    def test_step_decay_no_milestones(self):
        sched = StepDecaySchedule(initial_rate=0.5)
        assert sched.rate_at(1000) == 0.5


class TestSgdUpdateRule:
    def test_plain_sgd_step(self):
        rule = SgdUpdateRule(ConstantSchedule(0.5))
        p = params(1.0)
        rule.apply(p, grad(1.0))
        np.testing.assert_allclose(p["w"], [0.5, 0.5])

    def test_returns_rate_used(self):
        rule = SgdUpdateRule(StepDecaySchedule(1.0, (1,), 0.1))
        p = params()
        assert rule.apply(p, grad()) == 1.0
        assert rule.apply(p, grad()) == pytest.approx(0.1)

    def test_update_count_advances(self):
        rule = SgdUpdateRule(ConstantSchedule(0.1))
        p = params()
        for _ in range(5):
            rule.apply(p, grad())
        assert rule.updates_applied == 5

    def test_clipping_limits_step(self):
        rule = SgdUpdateRule(ConstantSchedule(1.0), clip_norm=1.0)
        p = params(0.0)
        rule.apply(p, ParamSet({"w": np.array([30.0, 40.0])}))  # norm 50
        assert np.linalg.norm(p["w"]) == pytest.approx(1.0)

    def test_momentum_accumulates(self):
        rule = SgdUpdateRule(ConstantSchedule(1.0), momentum=0.5)
        p = params(0.0)
        rule.apply(p, grad(1.0))  # v=1, w=-1
        np.testing.assert_allclose(p["w"], [-1.0, -1.0])
        rule.apply(p, grad(1.0))  # v=1.5, w=-2.5
        np.testing.assert_allclose(p["w"], [-2.5, -2.5])

    def test_momentum_one_rejected(self):
        with pytest.raises(ValueError):
            SgdUpdateRule(ConstantSchedule(0.1), momentum=1.0)

    def test_invalid_clip_rejected(self):
        with pytest.raises(ValueError):
            SgdUpdateRule(ConstantSchedule(0.1), clip_norm=0.0)

    def test_state_snapshot(self):
        rule = SgdUpdateRule(ConstantSchedule(0.1), momentum=0.3)
        state = rule.state()
        assert state["updates_applied"] == 0
        assert state["momentum"] == 0.3
        assert state["current_rate"] == 0.1

    def test_gd_convergence_on_quadratic(self):
        # minimize 0.5*||w - target||^2 with its exact gradient
        target = np.array([3.0, -2.0])
        rule = SgdUpdateRule(ConstantSchedule(0.2))
        p = ParamSet({"w": np.zeros(2)})
        for _ in range(200):
            g = ParamSet({"w": p["w"] - target})
            rule.apply(p, g)
        np.testing.assert_allclose(p["w"], target, atol=1e-8)


class TestAdaGrad:
    def test_first_step_normalizes_gradient(self):
        from repro.ml.optim import AdaGradUpdateRule

        rule = AdaGradUpdateRule(ConstantSchedule(0.5))
        p = params(1.0)
        rule.apply(p, ParamSet({"w": np.array([1.0, 2.0])}))
        # step = rate * g / (|g| + eps) = rate * sign(g) on the first step
        np.testing.assert_allclose(p["w"], [0.5, 0.5], rtol=1e-6)

    def test_effective_rate_shrinks_per_coordinate(self):
        from repro.ml.optim import AdaGradUpdateRule

        rule = AdaGradUpdateRule(ConstantSchedule(1.0))
        p = params(0.0)
        before = p["w"].copy()
        rule.apply(p, grad(1.0))
        first_step = before - p["w"]
        before = p["w"].copy()
        rule.apply(p, grad(1.0))
        second_step = before - p["w"]
        assert np.all(second_step < first_step)

    def test_update_count_advances(self):
        from repro.ml.optim import AdaGradUpdateRule

        rule = AdaGradUpdateRule(ConstantSchedule(0.1))
        p = params()
        rule.apply(p, grad())
        rule.apply(p, grad())
        assert rule.updates_applied == 2

    def test_clipping_applies_before_accumulation(self):
        from repro.ml.optim import AdaGradUpdateRule

        rule = AdaGradUpdateRule(ConstantSchedule(1.0), clip_norm=1.0)
        p = params(0.0)
        rule.apply(p, ParamSet({"w": np.array([30.0, 40.0])}))
        # Clipped direction (0.6, 0.8) then AdaGrad-normalized: both
        # coordinates step by ~rate.
        assert np.all(np.abs(p["w"]) <= 1.0 + 1e-6)

    def test_converges_on_quadratic(self):
        from repro.ml.optim import AdaGradUpdateRule

        target = np.array([3.0, -2.0])
        rule = AdaGradUpdateRule(ConstantSchedule(0.5))
        p = ParamSet({"w": np.zeros(2)})
        for _ in range(2000):
            g = ParamSet({"w": p["w"] - target})
            rule.apply(p, g)
        np.testing.assert_allclose(p["w"], target, atol=0.05)

    def test_invalid_epsilon(self):
        from repro.ml.optim import AdaGradUpdateRule

        with pytest.raises(ValueError):
            AdaGradUpdateRule(ConstantSchedule(0.1), epsilon=0.0)


class TestStalenessAware:
    def make(self, rate=1.0, min_scale=0.05):
        from repro.ml.optim import StalenessAwareUpdateRule

        return StalenessAwareUpdateRule(ConstantSchedule(rate),
                                        min_scale=min_scale)

    def test_fresh_push_full_rate(self):
        rule = self.make()
        p = params(0.0)
        used = rule.apply_stale(p, grad(1.0), staleness=0)
        assert used == pytest.approx(1.0)
        np.testing.assert_allclose(p["w"], [-1.0, -1.0])

    def test_stale_push_damped(self):
        rule = self.make()
        p = params(0.0)
        used = rule.apply_stale(p, grad(1.0), staleness=9)
        assert used == pytest.approx(0.1)

    def test_min_scale_floor(self):
        rule = self.make(min_scale=0.25)
        used = rule.apply_stale(params(0.0), grad(1.0), staleness=1000)
        assert used == pytest.approx(0.25)

    def test_negative_staleness_rejected(self):
        with pytest.raises(ValueError):
            self.make().apply_stale(params(0.0), grad(1.0), staleness=-1)

    def test_invalid_min_scale(self):
        from repro.ml.optim import StalenessAwareUpdateRule

        with pytest.raises(ValueError):
            StalenessAwareUpdateRule(ConstantSchedule(0.1), min_scale=0.0)

    def test_store_routes_staleness(self):
        from repro.ml.optim import StalenessAwareUpdateRule
        from repro.ps import ParameterStore

        rule = StalenessAwareUpdateRule(ConstantSchedule(1.0))
        store = ParameterStore(params(0.0), rule)
        snap = store.snapshot(0.0)  # version 0
        store.apply_push(1, grad(1.0), 0, 1.0)   # staleness 0 -> rate 1
        record = store.apply_push(0, grad(1.0), snap.version, 2.0)
        # second push has staleness 1 -> rate 0.5
        assert record.learning_rate == pytest.approx(0.5)
        np.testing.assert_allclose(store.params["w"], [-1.5, -1.5])
