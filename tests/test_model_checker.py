"""Tests for the generic explicit-state checker on small toy models."""

import pytest

from repro.analysis.model.checker import explore


class _Counter:
    """A chain 0 → 1 → … → limit, with hooks for every property class."""

    def __init__(
        self,
        limit=5,
        bad_state=None,
        bad_action=None,
        deadlock_at=None,
        trap_at=None,
        in_flight_at_end=0,
    ):
        self.limit = limit
        self.bad_state = bad_state
        self.bad_action = bad_action
        self.deadlock_at = deadlock_at
        self.trap_at = trap_at
        self.in_flight_at_end = in_flight_at_end
        self.state_invariants = [
            ("no-bad-state", lambda s: f"hit {s}" if s == self.bad_state else None)
        ]
        self.action_invariants = [
            (
                "no-bad-action",
                lambda pre, a, post: f"fired {a}" if a == self.bad_action else None,
            )
        ]

    def initial_state(self):
        return 0

    def is_terminal(self, state):
        return state == self.limit

    def in_flight(self, state):
        return self.in_flight_at_end if state == self.limit else 0

    def render_state(self, state):
        return f"n={state}"

    def render_action(self, action):
        return str(action)

    def successors(self, state):
        if state == self.limit or state == self.deadlock_at:
            return []
        if state == self.trap_at:
            return [(f"loop@{state}", state + 1000), (f"loop-back@{state}", state)]
        if state >= 1000:
            return [("spin", state)]  # a livelock component, never terminal
        return [(f"inc@{state}", state + 1)]


class TestHealthyExploration:
    def test_clean_chain_passes(self):
        result = explore(_Counter(limit=5))
        assert result.ok
        assert result.states == 6
        assert result.transitions == 5
        assert result.depth == 5
        assert result.terminal_states == 1
        assert result.violations == []

    def test_dfs_explores_same_space(self):
        bfs = explore(_Counter(limit=7), strategy="bfs")
        dfs = explore(_Counter(limit=7), strategy="dfs")
        assert (bfs.states, bfs.transitions) == (dfs.states, dfs.transitions)
        assert dfs.ok

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            explore(_Counter(), strategy="random")


class TestViolations:
    def test_state_invariant_with_shortest_trace(self):
        result = explore(_Counter(limit=5, bad_state=3))
        assert not result.ok
        (violation,) = result.violations
        assert violation.kind == "state-invariant"
        assert violation.name == "no-bad-state"
        # init line + exactly 3 steps: BFS guarantees the shortest path.
        assert violation.trace[0].startswith("  init: n=0")
        assert len(violation.trace) == 4
        assert violation.state == "n=3"

    def test_action_invariant_names_the_action(self):
        result = explore(_Counter(limit=5, bad_action="inc@2"))
        (violation,) = result.violations
        assert violation.kind == "action-invariant"
        assert "inc@2" in violation.trace[-1]

    def test_deadlock_detected(self):
        result = explore(_Counter(limit=5, deadlock_at=2))
        kinds = {v.kind for v in result.violations}
        assert "deadlock" in kinds
        deadlock = next(v for v in result.violations if v.kind == "deadlock")
        assert deadlock.state == "n=2"

    def test_livelock_detected(self):
        # trap_at=2 branches into a spin component that never terminates.
        result = explore(_Counter(limit=5, trap_at=2))
        kinds = {v.kind for v in result.violations}
        assert "livelock" in kinds

    def test_dropped_message_at_quiescence(self):
        result = explore(_Counter(limit=3, in_flight_at_end=2))
        (violation,) = result.violations
        assert violation.kind == "dropped-message"
        assert "2 message(s)" in violation.message

    def test_liveness_can_be_disabled(self):
        result = explore(_Counter(limit=5, trap_at=2), check_liveness=False)
        assert all(v.kind != "livelock" for v in result.violations)

    def test_one_report_per_property(self):
        # Every state from 0..limit-1 fires the same action invariant;
        # the checker must report it once, not per transition.
        model = _Counter(limit=5)
        model.action_invariants = [("always", lambda pre, a, post: "boom")]
        result = explore(model)
        assert len([v for v in result.violations if v.name == "always"]) == 1


class TestTruncation:
    def test_max_states_sets_truncated(self):
        result = explore(_Counter(limit=50), max_states=10)
        assert result.truncated
        assert not result.ok
        assert result.states == 10

    def test_render_includes_trace_and_state(self):
        result = explore(_Counter(limit=5, bad_state=2))
        text = result.violations[0].render()
        assert "state-invariant [no-bad-state]" in text
        assert "final state: n=2" in text

    def test_to_dict_round_trips_counts(self):
        result = explore(_Counter(limit=4))
        data = result.to_dict()
        assert data["states"] == 5
        assert data["ok"] is True
        assert data["violations"] == []
