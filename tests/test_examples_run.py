"""Smoke-run the fast example scripts end-to-end (deliverable check).

Each example is executed as a subprocess exactly as a user would run it;
only the quick ones run here (the cluster-scale studies take minutes and
are exercised by the benchmark suite instead).
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[1] / "examples"

FAST_EXAMPLES = {
    "paper_walkthrough.py": ["SpecSync timeline", "ABORT"],
    "threaded_backend.py": ["threads + SpecSync-Adaptive", "re-syncs"],
    "multiprocess_backend.py": ["processes + SpecSync-Adaptive", "server process"],
}


@pytest.mark.parametrize("script", sorted(FAST_EXAMPLES), ids=sorted(FAST_EXAMPLES))
def test_example_runs_and_prints_expected_output(script):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"example missing: {path}"
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    for needle in FAST_EXAMPLES[script]:
        assert needle in proc.stdout, (
            f"{script}: expected {needle!r} in output\n{proc.stdout[-2000:]}"
        )


def test_all_examples_have_module_docstrings():
    scripts = sorted(EXAMPLES_DIR.glob("*.py"))
    assert len(scripts) >= 3, "the deliverable requires at least 3 examples"
    for script in scripts:
        text = script.read_text(encoding="utf-8")
        assert text.lstrip().startswith(("#!", '"""')), script.name
        assert '"""' in text, f"{script.name} lacks a docstring"
        assert "Run:" in text, f"{script.name} lacks run instructions"


def test_examples_only_use_public_api():
    """Examples must not reach into private modules (underscore names)."""
    import re

    for script in EXAMPLES_DIR.glob("*.py"):
        for line in script.read_text(encoding="utf-8").splitlines():
            if re.match(r"\s*(from|import)\s+repro", line):
                assert "._" not in line, f"{script.name}: private import {line!r}"
