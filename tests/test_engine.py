"""Integration tests for the training engine."""

import numpy as np
import pytest

from repro import AspPolicy, ClusterSpec, ConvergenceCriterion
from repro.netsim.messages import CONTROL_MESSAGE_BYTES
from repro.workloads import tiny_workload


CLUSTER = ClusterSpec.homogeneous(4)


def run_tiny(policy=None, seed=0, horizon=30.0, **kwargs):
    workload = tiny_workload()
    return workload.run(CLUSTER, policy or AspPolicy(), seed=seed,
                        horizon_s=horizon, **kwargs)


class TestBasicExecution:
    def test_produces_iterations_and_curve(self):
        result = run_tiny()
        assert result.total_iterations > 0
        assert len(result.curve) > 0
        assert result.num_workers == 4

    def test_loss_decreases(self):
        result = run_tiny(horizon=60.0)
        assert result.final_loss < result.curve[0].loss

    def test_pushes_equal_iterations(self):
        result = run_tiny()
        assert len(result.traces.pushes) == result.total_iterations

    def test_every_worker_progresses(self):
        result = run_tiny()
        assert all(w.iterations > 0 for w in result.worker_stats)

    def test_pulls_at_least_one_per_iteration(self):
        result = run_tiny()
        for stats in result.worker_stats:
            assert stats.pulls >= stats.iterations


class TestDeterminism:
    def test_same_seed_identical_results(self):
        a = run_tiny(seed=11)
        b = run_tiny(seed=11)
        assert a.total_iterations == b.total_iterations
        assert a.final_loss == b.final_loss
        assert [p.time for p in a.traces.pushes] == [p.time for p in b.traces.pushes]
        assert a.total_transfer_bytes == b.total_transfer_bytes

    def test_different_seeds_differ(self):
        a = run_tiny(seed=1)
        b = run_tiny(seed=2)
        assert [p.time for p in a.traces.pushes] != [p.time for p in b.traces.pushes]


class TestTraceInvariants:
    def test_push_versions_strictly_increase(self):
        result = run_tiny()
        versions = [p.version_after for p in result.traces.pushes]
        assert versions == sorted(versions)
        assert len(set(versions)) == len(versions)

    def test_staleness_non_negative(self):
        result = run_tiny()
        assert all(p.staleness >= 0 for p in result.traces.pushes)

    def test_snapshot_version_before_apply_version(self):
        result = run_tiny()
        for push in result.traces.pushes:
            assert push.snapshot_version < push.version_after

    def test_each_push_preceded_by_pull(self):
        result = run_tiny()
        pulls = result.traces.pulls_by_worker()
        pushes = result.traces.pushes_by_worker()
        for worker_id, worker_pushes in pushes.items():
            worker_pulls = pulls[worker_id]
            for push in worker_pushes:
                assert any(p.time < push.time for p in worker_pulls)

    def test_asp_staleness_scales_with_workers(self):
        """With m free-running workers, a push misses roughly the pushes of
        the other m−1 workers made during one iteration."""
        result = run_tiny(horizon=60.0)
        m = CLUSTER.num_workers
        assert 0.3 * (m - 1) < result.mean_staleness < 2.5 * (m - 1)


class TestTransferAccounting:
    def test_bytes_match_message_counts(self):
        result = run_tiny()
        workload = tiny_workload()
        by_kind = result.ledger.bytes_by_kind()
        pulls = sum(w.pulls for w in result.worker_stats)
        pushes = sum(w.pushes for w in result.worker_stats)
        # Every pull response carries the model; in-flight messages at the
        # horizon may not be delivered/accounted, so allow the recorded
        # count to be one smaller per worker.
        assert by_kind["pull_response"] <= pulls * workload.param_wire_bytes
        assert by_kind["pull_response"] >= (pulls - 4) * workload.param_wire_bytes
        assert by_kind["push"] == pytest.approx(pushes * workload.param_wire_bytes)
        assert by_kind["pull_request"] <= pulls * CONTROL_MESSAGE_BYTES + 4 * CONTROL_MESSAGE_BYTES

    def test_asp_has_no_specsync_control_traffic(self):
        result = run_tiny()
        by_kind = result.ledger.bytes_by_kind()
        assert "notify" not in by_kind
        assert "resync" not in by_kind


class TestEarlyStop:
    def test_early_stop_halts_before_horizon(self):
        workload = tiny_workload()
        full = workload.run(CLUSTER, AspPolicy(), seed=0, horizon_s=120.0)
        stopped = workload.run(
            CLUSTER, AspPolicy(), seed=0, horizon_s=120.0, early_stop=True
        )
        assert stopped.total_iterations < full.total_iterations
        # it stopped because it converged
        conv = stopped.evaluate_convergence(workload.convergence)
        assert conv.converged

    def test_max_total_iterations(self):
        result = run_tiny(horizon=200.0, max_total_iterations=20)
        # Workers already in flight may complete, but no new work starts.
        assert result.total_iterations <= 20 + CLUSTER.num_workers


class TestHeterogeneousCluster:
    def test_fast_nodes_complete_more_iterations(self):
        cluster = ClusterSpec.heterogeneous(
            [("m3.xlarge", 3), ("m4.2xlarge", 3)]
        )
        workload = tiny_workload()
        result = workload.run(cluster, AspPolicy(), seed=0, horizon_s=60.0)
        slow = [w.iterations for w in result.worker_stats[:3]]
        fast = [w.iterations for w in result.worker_stats[3:]]
        assert np.mean(fast) > np.mean(slow)


class TestValidation:
    def test_partition_count_must_match_workers(self):
        from repro.ps.engine import TrainingEngine, EngineConfig
        from repro.ml.optim import SgdUpdateRule, ConstantSchedule
        from repro.cluster.compute import ComputeTimeModel

        workload = tiny_workload()
        dataset = workload.dataset_factory(0)
        rng = np.random.default_rng(0)
        partitions = dataset.partition(2, rng)  # 2 partitions, 4 workers
        with pytest.raises(ValueError):
            TrainingEngine(
                model=workload.model_factory(),
                partitions=partitions,
                eval_batch=dataset.eval_batch(),
                update_rule=workload.update_rule_factory(),
                policy=AspPolicy(),
                cluster=CLUSTER,
                base_compute_model=ComputeTimeModel(mean_time_s=1.0),
                config=EngineConfig(
                    batch_size=8, horizon_s=10.0, eval_interval_s=1.0,
                    param_wire_bytes=100.0,
                ),
            )

    def test_engine_config_validation(self):
        from repro.ps.engine import EngineConfig

        with pytest.raises(ValueError):
            EngineConfig(batch_size=0, horizon_s=1.0, eval_interval_s=1.0,
                         param_wire_bytes=1.0)
        with pytest.raises(ValueError):
            EngineConfig(batch_size=1, horizon_s=-1.0, eval_interval_s=1.0,
                         param_wire_bytes=1.0)
        with pytest.raises(ValueError):
            EngineConfig(batch_size=1, horizon_s=1.0, eval_interval_s=0.0,
                         param_wire_bytes=1.0)
