"""Tests for the ParamSet container."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.ml import ParamSet


def make_params():
    return ParamSet({"w": np.array([[1.0, 2.0], [3.0, 4.0]]), "b": np.array([5.0])})


class TestBasics:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ParamSet({})

    def test_mapping_interface(self):
        params = make_params()
        assert "w" in params and "b" in params
        assert len(params) == 2
        assert list(params) == ["w", "b"]
        np.testing.assert_array_equal(params["b"], [5.0])

    def test_arrays_coerced_to_float64(self):
        params = ParamSet({"x": np.array([1, 2, 3], dtype=np.int32)})
        assert params["x"].dtype == np.float64

    def test_num_elements(self):
        assert make_params().num_elements == 5

    def test_wire_bytes_float32(self):
        assert make_params().wire_bytes() == 20
        assert make_params().wire_bytes(dtype_bytes=8) == 40


class TestVectorOps:
    def test_copy_is_deep(self):
        a = make_params()
        b = a.copy()
        b["w"][0, 0] = 99.0
        assert a["w"][0, 0] == 1.0

    def test_zeros_like(self):
        zeros = make_params().zeros_like()
        assert zeros.norm() == 0.0
        assert set(zeros.keys()) == {"w", "b"}

    def test_add_scaled_in_place(self):
        a = make_params()
        g = make_params()
        a.add_scaled(g, -0.5)
        np.testing.assert_allclose(a["b"], [2.5])

    def test_scaled_returns_new(self):
        a = make_params()
        b = a.scaled(2.0)
        np.testing.assert_allclose(b["b"], [10.0])
        np.testing.assert_allclose(a["b"], [5.0])

    def test_subtract(self):
        diff = make_params().subtract(make_params())
        assert diff.norm() == 0.0

    def test_norm(self):
        params = ParamSet({"x": np.array([3.0]), "y": np.array([4.0])})
        assert params.norm() == pytest.approx(5.0)

    def test_incompatible_keys_rejected(self):
        a = make_params()
        b = ParamSet({"w": np.zeros((2, 2))})
        with pytest.raises(ValueError):
            a.add_scaled(b, 1.0)

    def test_incompatible_shapes_rejected(self):
        a = make_params()
        b = ParamSet({"w": np.zeros((3, 2)), "b": np.zeros(1)})
        with pytest.raises(ValueError):
            a.add_scaled(b, 1.0)


class TestClipping:
    def test_no_clip_below_threshold(self):
        params = ParamSet({"x": np.array([3.0, 4.0])})  # norm 5
        clipped = params.clip_by_global_norm(10.0)
        assert clipped.allclose(params)

    def test_clip_rescales_to_max(self):
        params = ParamSet({"x": np.array([3.0, 4.0])})
        clipped = params.clip_by_global_norm(1.0)
        assert clipped.norm() == pytest.approx(1.0)
        # direction preserved
        np.testing.assert_allclose(clipped["x"], [0.6, 0.8])

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            make_params().clip_by_global_norm(0.0)

    def test_zero_params_unchanged(self):
        zeros = make_params().zeros_like()
        assert zeros.clip_by_global_norm(1.0).norm() == 0.0


class TestVectorRoundTrip:
    def test_to_from_vector(self):
        params = make_params()
        vec = params.to_vector()
        assert vec.shape == (5,)
        rebuilt = params.from_vector(vec)
        assert rebuilt.allclose(params)

    def test_from_vector_wrong_size(self):
        with pytest.raises(ValueError):
            make_params().from_vector(np.zeros(4))

    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=5,
            max_size=5,
        )
    )
    def test_round_trip_any_values(self, values):
        params = make_params()
        vec = np.array(values)
        rebuilt = params.from_vector(vec)
        np.testing.assert_allclose(rebuilt.to_vector(), vec)


class TestAllclose:
    def test_different_keys_not_close(self):
        a = make_params()
        b = ParamSet({"w": a["w"].copy()})
        assert not a.allclose(b)

    def test_tolerance(self):
        a = make_params()
        b = a.copy()
        b["b"][0] += 1e-14
        assert a.allclose(b)
        b["b"][0] += 1.0
        assert not a.allclose(b)
