"""Fixture tests for the BUF-* ownership & aliasing rule pack.

Each rule gets true positives and true negatives run through
``lint_source`` exactly like the real engine runs files — including the
interprocedural cases (a view leaking *through* a helper call, a
constructor absorbing a caller's array) and the ``.copy()``-kills-alias
strong update the dataflow layer exists for.
"""

import textwrap

import pytest

from repro.analysis.engine import lint_source
from repro.analysis.rules import (
    OPT_IN_PACKS,
    RULE_PACKS,
    default_rules,
    rules_for,
)

MODULE = "repro.runtime.fixture"


def _lint(source, module=MODULE, rule_ids=None, packs=("ownership",)):
    findings = lint_source(
        textwrap.dedent(source),
        module=module,
        rules=rules_for(rule_ids=rule_ids, packs=None if rule_ids else packs),
    )
    return [f for f in findings if not f.suppressed]


def _ids(findings):
    return [f.rule_id for f in findings]


# ----------------------------------------------------------------------
# BUF-MUT-BORROWED
# ----------------------------------------------------------------------
class TestMutateBorrowed:
    def test_tp_augassign_on_parameter(self):
        findings = _lint('''
            def scale(grad, alpha):
                grad *= alpha
                return None
        ''', rule_ids=["BUF-MUT-BORROWED"])
        assert _ids(findings) == ["BUF-MUT-BORROWED"]
        assert "'grad'" in findings[0].message

    def test_tp_setitem_on_parameter_slice(self):
        findings = _lint('''
            def zero_first(params):
                params["w"][...] = 0.0
        ''', rule_ids=["BUF-MUT-BORROWED"])
        assert _ids(findings) == ["BUF-MUT-BORROWED"]

    def test_tp_out_keyword_targets_parameter(self):
        findings = _lint('''
            import numpy as np

            def accumulate(total_array, delta):
                np.add(total_array, delta, out=total_array)
        ''', rule_ids=["BUF-MUT-BORROWED"])
        assert _ids(findings) == ["BUF-MUT-BORROWED"]
        assert "out=" in findings[0].message

    def test_tp_view_through_call_still_borrowed(self):
        # the alias is created inside a helper; only the interprocedural
        # summary ties `flat` back to the caller's argument
        findings = _lint('''
            def flatten(a_array):
                return a_array.reshape(-1)

            def bump(grad):
                flat = flatten(grad)
                flat += 1.0
        ''', rule_ids=["BUF-MUT-BORROWED"])
        assert _ids(findings) == ["BUF-MUT-BORROWED"]
        assert "'grad'" in findings[0].message

    def test_tn_copy_kills_the_alias(self):
        findings = _lint('''
            def scale(grad, alpha):
                grad = grad.copy()
                grad *= alpha
                return grad
        ''', rule_ids=["BUF-MUT-BORROWED"])
        assert findings == []

    def test_tn_documented_inplace_contract(self):
        findings = _lint('''
            def apply(params, grad):
                """Apply the update, mutating ``params`` in place."""
                params["w"] -= grad["w"]
        ''', rule_ids=["BUF-MUT-BORROWED"])
        assert findings == []

    def test_tn_gather_indexing_owns_its_result(self):
        # fancy indexing materializes a fresh array — mutating it is fine
        findings = _lint('''
            def rows(params, row_ids):
                picked = params[row_ids]
                picked += 1.0
                return picked
        ''', rule_ids=["BUF-MUT-BORROWED"])
        assert findings == []

    def test_suppression_waives_with_justification(self):
        findings = _lint('''
            def scale(grad):
                grad *= 2  # repro: allow[BUF-MUT-BORROWED] caller passes a scratch buffer by contract
        ''', rule_ids=["BUF-MUT-BORROWED"])
        assert findings == []


# ----------------------------------------------------------------------
# BUF-RETURN-VIEW
# ----------------------------------------------------------------------
class TestReturnView:
    def test_tp_public_method_returns_internal_array(self):
        findings = _lint('''
            class Store:
                def current(self):
                    return self._weights
        ''', rule_ids=["BUF-RETURN-VIEW"])
        assert _ids(findings) == ["BUF-RETURN-VIEW"]
        assert "'_weights'" in findings[0].message

    def test_tp_witness_path_through_local(self):
        findings = _lint('''
            class Store:
                def current(self):
                    w = self._weights
                    w = w.reshape(-1)
                    return w
        ''', rule_ids=["BUF-RETURN-VIEW"])
        assert _ids(findings) == ["BUF-RETURN-VIEW"]
        assert findings[0].flow_path  # alias intro line -> return line
        assert findings[0].flow_path[0] < findings[0].flow_path[-1]

    def test_tn_returning_a_copy(self):
        findings = _lint('''
            class Store:
                def current(self):
                    return self._weights.copy()
        ''', rule_ids=["BUF-RETURN-VIEW"])
        assert findings == []

    def test_tn_documented_view_contract(self):
        findings = _lint('''
            class Store:
                def current(self):
                    """Live view of the weights — read-only by convention."""
                    return self._weights
        ''', rule_ids=["BUF-RETURN-VIEW"])
        assert findings == []

    def test_tn_private_helpers_may_share_views(self):
        findings = _lint('''
            class Store:
                def _peek(self):
                    return self._weights
        ''', rule_ids=["BUF-RETURN-VIEW"])
        assert findings == []


# ----------------------------------------------------------------------
# BUF-ALIAS-STORE
# ----------------------------------------------------------------------
class TestAliasStore:
    def test_tp_constructor_stores_callers_array(self):
        findings = _lint('''
            class Store:
                def __init__(self, weights):
                    self._weights = weights
        ''', rule_ids=["BUF-ALIAS-STORE"])
        assert _ids(findings) == ["BUF-ALIAS-STORE"]
        assert "'weights'" in findings[0].message

    def test_tp_keyed_store_into_self_container(self):
        findings = _lint('''
            class Store:
                def init(self, key, value_array):
                    self._arrays[key] = value_array
        ''', rule_ids=["BUF-ALIAS-STORE"])
        assert _ids(findings) == ["BUF-ALIAS-STORE"]

    def test_tp_append_into_self_container(self):
        findings = _lint('''
            class Log:
                def record(self, grad):
                    self._grads.append(grad)
        ''', rule_ids=["BUF-ALIAS-STORE"])
        assert _ids(findings) == ["BUF-ALIAS-STORE"]

    def test_tp_absorbing_constructor_called_indirectly(self):
        # Holder.__init__ takes the array by reference; S constructing a
        # Holder from its own parameter therefore absorbs it too
        findings = _lint('''
            class Holder:
                def __init__(self, buf_array):
                    self._buf = buf_array

            class S:
                def __init__(self, grad):
                    self.held = Holder(grad)
        ''', rule_ids=["BUF-ALIAS-STORE"])
        assert _ids(findings) == ["BUF-ALIAS-STORE", "BUF-ALIAS-STORE"]
        assert any("'grad'" in f.message for f in findings)

    def test_tn_explicit_copy_on_store(self):
        findings = _lint('''
            import numpy as np

            class Store:
                def __init__(self, weights):
                    self._weights = np.array(weights, copy=True)

                def init(self, key, value_array):
                    self._arrays[key] = value_array.copy()
        ''', rule_ids=["BUF-ALIAS-STORE"])
        assert findings == []


# ----------------------------------------------------------------------
# BUF-SHM-UNFENCED
# ----------------------------------------------------------------------
class TestShmUnfenced:
    def test_tp_raw_buffer_write_outside_fence(self):
        findings = _lint('''
            from repro.ps.shm import ShmArraySegment

            def publish(value):
                seg = ShmArraySegment.create("w", value)
                seg.array[...] = value
        ''', rule_ids=["BUF-SHM-UNFENCED"])
        assert _ids(findings) == ["BUF-SHM-UNFENCED"]
        assert findings[0].severity.value == "error"

    def test_tp_aliased_view_escapes_the_fence(self):
        # the view is taken inside the fence but written after it closed
        findings = _lint('''
            from repro.ps.shm import ShmArraySegment

            def publish(store, value, version):
                seg = ShmArraySegment.create("w", value)
                with store.write_fence(version):
                    live = seg.array
                live[...] = value
        ''', rule_ids=["BUF-SHM-UNFENCED"])
        assert "BUF-SHM-UNFENCED" in _ids(findings)

    def test_tn_write_inside_fence(self):
        findings = _lint('''
            from repro.ps.shm import ShmArraySegment

            def publish(store, value, version):
                seg = ShmArraySegment.create("w", value)
                with store.write_fence(version):
                    seg.array[...] = value
        ''', rule_ids=["BUF-SHM-UNFENCED"])
        assert findings == []

    def test_tn_fence_module_itself_is_exempt(self):
        findings = _lint('''
            class ShmArraySegment:
                def close(self):
                    self._shm.buf.release()
        ''', module="repro.ps.shm", rule_ids=["BUF-SHM-UNFENCED"])
        assert findings == []


# ----------------------------------------------------------------------
# Pack registration
# ----------------------------------------------------------------------
class TestPackRegistration:
    def test_ownership_pack_registered_with_four_rules(self):
        assert "ownership" in RULE_PACKS
        ids = sorted(cls.rule_id for cls in RULE_PACKS["ownership"])
        assert ids == [
            "BUF-ALIAS-STORE",
            "BUF-MUT-BORROWED",
            "BUF-RETURN-VIEW",
            "BUF-SHM-UNFENCED",
        ]

    def test_ownership_is_opt_in(self):
        assert "ownership" in OPT_IN_PACKS
        default_ids = {r.rule_id for r in default_rules()}
        assert not any(i.startswith("BUF-") for i in default_ids)

    def test_rules_for_selects_the_pack(self):
        ids = {r.rule_id for r in rules_for(packs=["ownership"])}
        assert len(ids) == 4 and all(i.startswith("BUF-") for i in ids)

    def test_unknown_pack_still_rejected(self):
        with pytest.raises(ValueError):
            rules_for(packs=["ownersip"])
