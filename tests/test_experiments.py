"""Smoke tests for the experiment drivers at SMOKE scale.

These check wiring and result-object structure; the full-scale,
paper-shaped numbers are produced by the benchmark harness.
"""

import pytest

from repro.cluster.spec import ClusterSpec
from repro.core.hyperparams import SpecSyncHyperparams
from repro.experiments import (
    ExperimentScale,
    grid_search_hyperparams,
    run_fig3,
    run_table1,
    scheme_catalog,
)
from repro.experiments.cherrypick_search import default_grid
from repro.experiments.common import CHERRYPICK_DEFAULTS
from repro.workloads import tiny_workload

SMOKE = ExperimentScale.SMOKE


class TestSchemeCatalog:
    def test_all_paper_schemes_present(self):
        catalog = scheme_catalog("mf")
        for key in ("original", "bsp", "ssp", "cherrypick", "adaptive",
                    "adaptive+ssp"):
            assert key in catalog

    def test_factories_return_fresh_policies(self):
        catalog = scheme_catalog("mf")
        assert catalog["adaptive"].make() is not catalog["adaptive"].make()

    def test_cherrypick_defaults_cover_paper_workloads(self):
        for name in ("mf", "cifar10", "imagenet"):
            assert name in CHERRYPICK_DEFAULTS

    def test_unknown_workload_falls_back(self):
        catalog = scheme_catalog("unknown-workload")
        policy = catalog["cherrypick"].make()
        assert policy.name == "specsync-cherrypick"


class TestScaleFromEnv:
    def test_default_full(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert ExperimentScale.from_env() is ExperimentScale.FULL

    def test_smoke(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert ExperimentScale.from_env() is ExperimentScale.SMOKE


class TestDrivers:
    def test_table1_smoke(self):
        result = run_table1(SMOKE)
        assert len(result.rows) == 3
        rendered = result.render()
        assert "4.2 million" in rendered
        # Measured iteration times should land near the paper's values.
        for row in result.rows:
            assert row.measured_iteration_time_s == pytest.approx(
                row.paper_iteration_time_s, rel=0.25
            )

    def test_fig3_smoke(self):
        result = run_fig3(SMOKE)
        assert set(result.boxes) == {"cifar10", "mf"}
        for boxes in result.boxes.values():
            assert boxes  # at least one interval
        assert "Fig. 3" in result.render()


class TestGridSearch:
    def test_default_grid_shape(self):
        grid = default_grid(14.0, num_abort_times=5, num_abort_rates=10)
        assert len(grid) == 50
        times = {hp.abort_time_s for hp in grid}
        assert len(times) == 5
        assert max(times) == pytest.approx(7.0)

    def test_grid_search_on_tiny(self):
        workload = tiny_workload()
        cluster = ClusterSpec.homogeneous(4)
        result = grid_search_hyperparams(
            workload, cluster, seed=0,
            probe_horizon_s=15.0,
            grid=[
                SpecSyncHyperparams(0.1, 0.2),
                SpecSyncHyperparams(0.3, 0.4),
            ],
        )
        assert result.num_trials == 2
        assert result.best in [t.hyperparams for t in result.trials]
        assert result.total_virtual_time_s == pytest.approx(30.0)
        assert "grid search" in result.render()
