"""Tests for Algorithm 1: freshness estimation and hyperparameter tuning."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.hyperparams import SpecSyncHyperparams
from repro.core.tuning import (
    AdaptiveTuner,
    EpochTrace,
    FixedTuner,
    candidate_windows,
    estimate_freshness_gain,
    estimate_freshness_loss,
    freshness_improvement,
    tune_hyperparams,
)


def make_trace(pushes, num_workers=4, spans=None):
    """Build an EpochTrace from (time, worker) pairs."""
    pushes = sorted(pushes)
    last = {}
    for t, w in pushes:
        last[w] = max(last.get(w, t), t)
    return EpochTrace(
        num_workers=num_workers,
        pushes=pushes,
        last_push_by_worker=last,
        iteration_spans=spans or {w: 10.0 for w in range(num_workers)},
    )


class TestHyperparams:
    def test_threshold_count(self):
        hp = SpecSyncHyperparams(abort_time_s=1.0, abort_rate=0.25)
        assert hp.threshold_count(40) == 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SpecSyncHyperparams(abort_time_s=0.0, abort_rate=0.1)
        with pytest.raises(ValueError):
            SpecSyncHyperparams(abort_time_s=1.0, abort_rate=-0.1)
        with pytest.raises(ValueError):
            SpecSyncHyperparams(abort_time_s=1.0, abort_rate=0.1).threshold_count(0)


class TestFreshnessGain:
    def test_counts_peer_pushes_after_own_last_push(self):
        trace = make_trace(
            [(0.0, 0), (1.0, 1), (2.0, 2), (3.0, 1)], num_workers=3
        )
        # worker 0's reference is t=0; peers push at 1, 2, 3.
        assert estimate_freshness_gain(trace, 0, 1.0) == 1
        assert estimate_freshness_gain(trace, 0, 2.0) == 2
        assert estimate_freshness_gain(trace, 0, 3.0) == 3

    def test_excludes_own_pushes(self):
        trace = make_trace([(0.0, 0), (1.0, 0), (2.0, 1)], num_workers=2)
        # worker 0's reference is its LAST push (t=1); only the peer at 2.
        assert estimate_freshness_gain(trace, 0, 5.0) == 1

    def test_window_boundary_inclusive(self):
        trace = make_trace([(0.0, 0), (2.0, 1)], num_workers=2)
        assert estimate_freshness_gain(trace, 0, 2.0) == 1
        assert estimate_freshness_gain(trace, 0, 1.999) == 0

    def test_worker_without_pushes_has_zero_gain(self):
        trace = make_trace([(0.0, 0)], num_workers=3)
        assert estimate_freshness_gain(trace, 2, 10.0) == 0

    def test_gain_is_monotone_step_function(self):
        trace = make_trace(
            [(0.0, 0), (1.0, 1), (2.5, 2), (7.0, 1)], num_workers=3
        )
        gains = [estimate_freshness_gain(trace, 0, w) for w in
                 (0.5, 1.0, 2.0, 2.5, 6.0, 7.0)]
        assert gains == sorted(gains)
        assert gains == [0, 1, 1, 2, 2, 3]

    def test_negative_window_rejected(self):
        trace = make_trace([(0.0, 0)], num_workers=1)
        with pytest.raises(ValueError):
            estimate_freshness_gain(trace, 0, -1.0)


class TestFreshnessLoss:
    def test_formula(self):
        # l = Δ(m−1)/T
        assert estimate_freshness_loss(41, 10.0, 2.0) == pytest.approx(8.0)

    def test_linear_in_window(self):
        one = estimate_freshness_loss(10, 5.0, 1.0)
        three = estimate_freshness_loss(10, 5.0, 3.0)
        assert three == pytest.approx(3 * one)

    def test_zero_window_zero_loss(self):
        assert estimate_freshness_loss(10, 5.0, 0.0) == 0.0

    def test_invalid_span_rejected(self):
        with pytest.raises(ValueError):
            estimate_freshness_loss(10, 0.0, 1.0)


class TestCandidateWindows:
    def test_pairwise_differences(self):
        windows = candidate_windows([0.0, 1.0, 3.0])
        assert windows == [1.0, 2.0, 3.0]

    def test_deduplication(self):
        windows = candidate_windows([0.0, 1.0, 2.0])  # diffs 1,1,2
        assert windows == [1.0, 2.0]

    def test_subsampling_cap(self):
        times = [float(i) ** 1.3 for i in range(100)]
        windows = candidate_windows(times, max_candidates=50)
        assert len(windows) == 50
        assert windows == sorted(windows)

    def test_empty_and_single(self):
        assert candidate_windows([]) == []
        assert candidate_windows([5.0]) == []

    @given(st.lists(st.floats(min_value=0, max_value=1e4), min_size=2, max_size=25))
    def test_all_windows_positive_and_sorted(self, times):
        windows = candidate_windows(times)
        assert all(w > 0 for w in windows)
        assert windows == sorted(windows)


class TestTuneHyperparams:
    def test_thin_trace_returns_none(self):
        assert tune_hyperparams(make_trace([], num_workers=2)) is None
        assert tune_hyperparams(
            EpochTrace(num_workers=2, pushes=[(0.0, 0)],
                       last_push_by_worker={0: 0.0}, iteration_spans={})
        ) is None

    def test_picks_window_covering_burst(self):
        """A burst of peer pushes shortly after most workers' last pushes
        should pull the tuned window out to cover the burst."""
        pushes = [(float(w) * 0.01, w) for w in range(3)]  # 0,1,2 at ~t=0
        # worker 3 then pushes in a burst around t ≈ 1
        pushes += [(1.0 + k * 0.1, 3) for k in range(4)]
        trace = make_trace(pushes, num_workers=4,
                           spans={w: 10.0 for w in range(4)})
        hp = tune_hyperparams(trace)
        assert hp is not None
        # Windows shorter than ~1s uncover nothing for workers 0-2, so the
        # maximizer must reach into the burst.
        assert hp.abort_time_s >= 0.9

    def test_window_below_mean_span(self):
        pushes = [(float(i), i % 3) for i in range(9)]
        trace = make_trace(pushes, num_workers=3,
                           spans={w: 3.0 for w in range(3)})
        hp = tune_hyperparams(trace)
        assert hp is not None
        assert hp.abort_time_s < 3.0

    def test_abort_rate_follows_algorithm1_line7(self):
        pushes = [(float(i) * 0.5, i % 4) for i in range(12)]
        spans = {w: 2.0 for w in range(4)}
        trace = make_trace(pushes, num_workers=4, spans=spans)
        hp = tune_hyperparams(trace)
        assert hp is not None
        m = 4
        mean_span = 2.0
        expected_rate = hp.abort_time_s * (m - 1) / (mean_span * m)
        assert hp.abort_rate == pytest.approx(expected_rate)

    @settings(deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100),
                st.integers(min_value=0, max_value=4),
            ),
            min_size=2,
            max_size=30,
        )
    )
    def test_tuned_window_is_a_candidate_or_none(self, pushes):
        trace = make_trace(pushes, num_workers=5)
        hp = tune_hyperparams(trace)
        if hp is not None:
            candidates = candidate_windows([t for t, _ in trace.pushes])
            assert any(abs(hp.abort_time_s - c) < 1e-9 for c in candidates)

    def test_tuned_window_maximizes_improvement(self):
        pushes = [(float(i) * 0.7, i % 4) for i in range(10)]
        trace = make_trace(pushes, num_workers=4,
                           spans={w: 5.0 for w in range(4)})
        hp = tune_hyperparams(trace)
        assert hp is not None
        best = freshness_improvement(trace, hp.abort_time_s)
        for candidate in candidate_windows([t for t, _ in trace.pushes]):
            if 0 < candidate < 5.0:
                assert freshness_improvement(trace, candidate) <= best + 1e-9


class TestTuners:
    def test_fixed_tuner_is_constant(self):
        hp = SpecSyncHyperparams(1.0, 0.2)
        tuner = FixedTuner(hp)
        assert tuner.initial() is hp
        assert tuner.retune(make_trace([(0.0, 0), (1.0, 1)])) is hp
        assert tuner.label == "cherrypick"

    def test_adaptive_tuner_starts_disabled(self):
        tuner = AdaptiveTuner()
        assert tuner.initial() is None
        assert tuner.label == "adaptive"

    def test_adaptive_tuner_records_history_and_cost(self):
        tuner = AdaptiveTuner()
        trace = make_trace([(float(i) * 0.5, i % 3) for i in range(9)],
                           num_workers=3)
        result = tuner.retune(trace)
        assert result is not None
        assert tuner.history == [result]
        assert tuner.total_tuning_wall_s > 0

    def test_adaptive_tuner_validates_candidates(self):
        with pytest.raises(ValueError):
            AdaptiveTuner(max_candidates=0)
