"""Integration tests: dynamic sanitizers over the real runtime backends.

The load-bearing regression here is graph containment: on the tier-1
threaded scenario, every lock-order edge the runtime actually takes must
already be present in the static ``CONC-LOCK-ORDER`` graph — the static
analysis over-approximates, so an observed-only edge means it has grown
a blind spot.
"""

import pytest

from repro.analysis.dynamic import (
    LocksetMonitor,
    build_threaded_run,
    diff_graphs,
    load_static_runtime_graph,
    observed_lock_graph,
    run_sanitizers,
    traced_runtime_locks,
    watch_from_static,
)

SERVER_LOCK = "repro.runtime.threaded.ThreadedParameterServer._lock"
SCHEDULER_LOCK = "repro.runtime.threaded._ThreadSafeScheduler._lock"


@pytest.fixture(scope="module")
def instrumented_trace():
    """One short instrumented threaded run, shared across this module."""
    with traced_runtime_locks() as trace:
        monitor = LocksetMonitor(trace)
        run = build_threaded_run(workers=4, seed=0)
        watch_from_static(run.server, monitor)
        watch_from_static(run.scheduler, monitor)
        run.run(0.3)
    return trace, monitor


class TestStaticDynamicParity:
    def test_observed_graph_is_subset_of_static(self, instrumented_trace):
        """Static CONC-LOCK-ORDER must cover every runtime-taken edge."""
        trace, _ = instrumented_trace
        observed = observed_lock_graph(trace)
        static = load_static_runtime_graph()
        extra = observed.edge_pairs() - static.edge_pairs()
        assert not extra, (
            f"runtime took lock-order edges the static graph lacks: {extra}"
        )

    def test_traced_lock_names_match_static_convention(self, instrumented_trace):
        """The tracer infers the exact qualified names the static pass uses."""
        trace, _ = instrumented_trace
        names = trace.lock_names()
        assert SERVER_LOCK in names
        assert SCHEDULER_LOCK in names
        for name in names:
            assert name.startswith("repro.runtime."), name

    def test_runtime_run_produces_no_races(self, instrumented_trace):
        """The guarded fields really are consistently locked at runtime."""
        trace, monitor = instrumented_trace
        assert monitor.findings() == []
        # All guarded fields of both watched classes were exercised.
        assert monitor.fields_tracked() >= 5
        assert len(trace) > 0

    def test_diff_against_static_is_two_sided(self, instrumented_trace):
        trace, _ = instrumented_trace
        diff = diff_graphs(observed_lock_graph(trace), load_static_runtime_graph())
        assert diff.observed_only == []
        # static_only edges are report-only: they must never be findings
        # (the static pass follows calls whether or not they happen).
        from repro.analysis.dynamic import static_gap_findings

        assert static_gap_findings(diff) == []

    def test_watch_from_static_rejects_lockless_classes(self):
        from repro.analysis.dynamic import LockTrace

        monitor = LocksetMonitor(LockTrace())
        with pytest.raises(ValueError):
            watch_from_static(object(), monitor)


class TestRunSanitizers:
    def test_threaded_clean_end_to_end(self):
        report = run_sanitizers(
            backend="threaded", duration_s=0.25, workers=3, seed=0, replay=False
        )
        assert report.clean, [f.render() for f in report.findings]
        assert report.lock_events > 0
        assert report.fields_tracked >= 5
        assert SERVER_LOCK in report.locks_seen

    def test_replay_check_is_deterministic(self):
        report = run_sanitizers(
            backend="threaded", duration_s=0.2, workers=2, seed=1, replay=True
        )
        assert report.replay is not None
        assert report.replay.deterministic
        assert report.replay.run_lengths[0] == report.replay.run_lengths[1] > 0
        assert report.clean

    def test_report_serializes(self):
        report = run_sanitizers(
            backend="threaded", duration_s=0.2, workers=2, seed=0, replay=False
        )
        payload = report.to_dict()
        assert payload["backend"] == "threaded"
        assert payload["findings"] == []
        assert payload["lock_events"] == report.lock_events
        assert isinstance(payload["graph_diff"]["static_only"], list)
        text = report.render_text()
        assert "lock events" in text and "clean" in text

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            run_sanitizers(backend="carrier-pigeon")

    def test_shims_uninstalled_after_run(self):
        import threading as real_threading

        from repro.runtime import multiprocess, threaded

        run_sanitizers(duration_s=0.2, workers=2, replay=False)
        assert threaded.threading is real_threading
        assert multiprocess.mp.__name__ == "multiprocessing"
