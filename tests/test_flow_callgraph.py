"""Call-graph construction: name binding, methods, imports, closure."""

import textwrap

from repro.analysis.engine import module_from_source
from repro.analysis.flow import build_call_graph


def _module(source, name):
    return module_from_source(
        textwrap.dedent(source), module=name, path=f"{name.replace('.', '/')}.py"
    )


def _edges(graph, caller):
    return [(e.callee, e.line) for e in graph.callees(caller)]


def test_module_function_and_method_resolution():
    mod = _module('''
        class Base:
            def ping(self):
                helper()

        class Worker(Base):
            def run(self):
                self.ping()
                Worker.step(self)

            def step(self):
                pass

        def helper():
            w = Worker()
            w.run()
    ''', "demo")
    graph = build_call_graph([mod])
    assert _edges(graph, "demo.Worker.run") == [
        ("demo.Base.ping", 8),   # self.m -> base-class lookup
        ("demo.Worker.step", 9),  # ClassName.method
    ]
    # local instance inference: w = Worker(); w.run()
    assert ("demo.Worker.run", 16) in _edges(graph, "demo.helper")
    # method -> module function by bare name
    assert _edges(graph, "demo.Base.ping") == [("demo.helper", 4)]


def test_cross_module_resolution_via_imports():
    util = _module('''
        def tick():
            pass

        class Clock:
            def now(self):
                pass
    ''', "pkg.util")
    main = _module('''
        import pkg.util
        from pkg.util import tick, Clock

        def a():
            tick()

        def b():
            pkg.util.tick()

        def c():
            clock = Clock()
            clock.now()
    ''', "pkg.main")
    graph = build_call_graph([util, main])
    assert _edges(graph, "pkg.main.a") == [("pkg.util.tick", 6)]
    assert _edges(graph, "pkg.main.b") == [("pkg.util.tick", 9)]
    assert ("pkg.util.Clock.now", 13) in _edges(graph, "pkg.main.c")


def test_external_calls_recorded_with_resolved_names():
    mod = _module('''
        import time as _t
        from queue import Queue

        def nap():
            _t.sleep(0.5)
            q = Queue()
    ''', "demo")
    graph = build_call_graph([mod])
    externals = dict(graph.external["demo.nap"])
    assert externals["time.sleep"] == 6
    assert externals["queue.Queue"] == 7


def test_nested_function_edges():
    mod = _module('''
        def outer():
            def inner():
                leaf()
            inner()

        def leaf():
            pass
    ''', "demo")
    graph = build_call_graph([mod])
    assert _edges(graph, "demo.outer") == [("demo.outer.inner", 5)]
    assert _edges(graph, "demo.outer.inner") == [("demo.leaf", 4)]


def test_reachable_from_and_call_path():
    mod = _module('''
        def a():
            b()

        def b():
            c()

        def c():
            pass

        def island():
            pass
    ''', "demo")
    graph = build_call_graph([mod])
    assert graph.reachable_from(["demo.a"]) == {"demo.a", "demo.b", "demo.c"}
    chain = graph.call_path("demo.a", "demo.c")
    assert [(e.caller, e.callee) for e in chain] == [
        ("demo.a", "demo.b"),
        ("demo.b", "demo.c"),
    ]
    assert graph.call_path("demo.a", "demo.island") is None
    assert graph.call_path("demo.a", "demo.a") == []


def test_recursion_does_not_loop():
    mod = _module('''
        def even(n):
            return n == 0 or odd(n - 1)

        def odd(n):
            return n != 0 and even(n - 1)
    ''', "demo")
    graph = build_call_graph([mod])
    assert graph.reachable_from(["demo.even"]) == {"demo.even", "demo.odd"}


def test_resolve_callable_for_function_references():
    mod = _module('''
        class Obs:
            def _on_event(self, event):
                pass

            def register(self):
                install_tap(self._on_event)

        def _tap(event):
            pass
    ''', "demo")
    graph = build_call_graph([mod])
    import ast as _ast

    register = graph.functions["demo.Obs.register"]
    (call,) = [
        n
        for n in _ast.walk(register.node)
        if isinstance(n, _ast.Call)
    ]
    assert (
        graph.resolve_callable("demo", call.args[0], register)
        == "demo.Obs._on_event"
    )
    name_ref = _ast.parse("_tap").body[0].value
    assert graph.resolve_callable("demo", name_ref, None) == "demo._tap"


def test_dynamic_calls_yield_no_edges():
    mod = _module('''
        def f(cb, table):
            cb()
            table["k"]()
            getattr(obj, "m")()
    ''', "demo")
    graph = build_call_graph([mod])
    assert graph.callees("demo.f") == []
