"""Overhead guard: disabled observability must stay in the noise.

The no-op fast path (shared :data:`NULL_TRACER`) is what every
instrumentation site talks to while no collector is enabled.  Directly
diffing two wall-clock timings of the same run is hopelessly noisy at
this scale, so the guard bounds the overhead analytically instead:

1. count how many instrumentation-site hits a seeded fig8-style MF run
   performs (records + metric updates of a traced run — an upper bound
   on the null calls the disabled run makes);
2. micro-benchmark the per-call cost of the null path (enabled check +
   no-op method call);
3. assert hits x cost stays under 5% of the measured disabled run time.

The 5% threshold is deliberately generous — the measured ratio is
typically under 0.1% — so the test only fires when someone makes the
disabled path genuinely expensive (e.g. building args dicts without an
``enabled`` guard would instead show up as a jump in the hit count).
"""

import time

from repro import ClusterSpec, SpecSyncPolicy
from repro.obs import NULL_PROFILER, NULL_TRACER, collecting
from repro.workloads import matrix_factorization_workload

#: Disabled observability may cost at most this fraction of the run.
MAX_OVERHEAD_FRACTION = 0.05

_BENCH_CALLS = 100_000


def _run_mf(horizon_s: float = 300.0):
    workload = matrix_factorization_workload()
    cluster = ClusterSpec.homogeneous(4)
    return workload.run(
        cluster, SpecSyncPolicy.adaptive(), seed=3, horizon_s=horizon_s
    )


def _null_call_cost_s() -> float:
    """Per-site cost of the disabled path: guard check + no-op call."""
    tracer = NULL_TRACER
    start = time.perf_counter()
    for _ in range(_BENCH_CALLS):
        if tracer.enabled:
            raise AssertionError("null tracer must report disabled")
        tracer.span("track", "name", start=0.0)
    elapsed = time.perf_counter() - start
    return elapsed / _BENCH_CALLS


def test_disabled_noop_path_overhead_is_bounded():
    # 1. Instrumentation-site hit count from a traced copy of the run.
    with collecting() as collector:
        traced = _run_mf()
    snapshot = collector.metrics.snapshot()
    # Counter *values* equal call counts except the byte totals, which
    # accumulate message sizes — but each of those calls pairs 1:1 with
    # a net.messages.* increment, so dropping them keeps the count exact.
    site_hits = (
        len(collector.records)
        + sum(
            value
            for name, value in snapshot["counters"].items()
            if not name.startswith("net.bytes.")
        )
        + sum(agg["count"] for agg in snapshot["histograms"].values())
    )
    assert traced.total_aborts > 0, "the guard run must exercise aborts"
    assert site_hits > 0

    # 2. Wall time of the same run with observability disabled (best of
    # three to shave scheduler noise).
    disabled_wall = min(
        _timed_run() for _ in range(3)
    )

    # 3. The bound.
    overhead_s = site_hits * _null_call_cost_s()
    fraction = overhead_s / disabled_wall
    assert fraction < MAX_OVERHEAD_FRACTION, (
        f"disabled observability path costs {overhead_s * 1e3:.3f} ms "
        f"({fraction:.2%}) against a {disabled_wall * 1e3:.0f} ms run; "
        f"budget is {MAX_OVERHEAD_FRACTION:.0%}"
    )


def _timed_run() -> float:
    start = time.perf_counter()
    _run_mf()
    return time.perf_counter() - start


def _null_profiler_call_cost_s() -> float:
    """Per-site cost of the disabled profiler: guard check + no-op call."""
    profiler = NULL_PROFILER
    start = time.perf_counter()
    for _ in range(_BENCH_CALLS):
        if profiler.enabled:
            raise AssertionError("null profiler must report disabled")
        profiler.phase("engine.compute", 0.0, 1.0)
    elapsed = time.perf_counter() - start
    return elapsed / _BENCH_CALLS


def test_disabled_profiler_path_overhead_is_bounded():
    """Same analytic guard as above, for the PR's profiler sites.

    Every profiler site guards on ``profiler.enabled`` before building
    arguments, so a disabled run pays at most one null call per *enabled*
    recording — counted here from an enabled copy of the run.
    """
    # 1. Profiler-site hit count from an enabled copy of the run.
    with collecting() as collector:
        _run_mf()
    perf = collector.perf.snapshot()
    site_hits = (
        sum(phase["count"] for phase in perf["phases"].values())
        + sum(perf["counters"].values())
        + sum(series["count"] for series in perf["series"].values())
        + len(perf["reports"])
    )
    assert site_hits > 0, "the guard run must hit profiler sites"

    # 2. Wall time with observability (and thus the profiler) disabled.
    disabled_wall = min(_timed_run() for _ in range(3))

    # 3. The bound.
    overhead_s = site_hits * _null_profiler_call_cost_s()
    fraction = overhead_s / disabled_wall
    assert fraction < MAX_OVERHEAD_FRACTION, (
        f"disabled profiler path costs {overhead_s * 1e3:.3f} ms "
        f"({fraction:.2%}) against a {disabled_wall * 1e3:.0f} ms run; "
        f"budget is {MAX_OVERHEAD_FRACTION:.0%}"
    )


def _null_ring_writer_call_cost_s() -> float:
    """Per-site cost of disabled live export: guard check + no-op call."""
    from repro.obs.live import NULL_RING_WRITER

    writer = NULL_RING_WRITER
    start = time.perf_counter()
    for _ in range(_BENCH_CALLS):
        if writer.enabled:
            raise AssertionError("null ring writer must report disabled")
        writer.span("track", "name", start=0.0)
    elapsed = time.perf_counter() - start
    return elapsed / _BENCH_CALLS


def test_disabled_live_export_path_overhead_is_bounded():
    """Same analytic guard for the live-telemetry exporter sites.

    Without a :class:`LiveTelemetrySession` every exporter site in the
    multiprocess backend holds the shared ``NULL_RING_WRITER``; the hit
    count of a live-exported copy of the run (every record the rings
    carried) times the null-call cost must stay under the 5% budget
    against the disabled run's wall time.
    """
    import numpy as np

    from repro.cluster.compute import ComputeTimeModel
    from repro.core.tuning import AdaptiveTuner
    from repro.ml import SoftmaxRegressionModel, SyntheticImageDataset
    from repro.ml.optim import ConstantSchedule, SgdUpdateRule
    from repro.obs.live import LiveTelemetrySession
    from repro.runtime import MultiprocessRun

    def build(live_session=None):
        dataset = SyntheticImageDataset(
            num_classes=3, feature_dim=8, num_samples=800,
            class_separation=3.0, warp=False, seed=0,
        )
        return MultiprocessRun(
            model=SoftmaxRegressionModel(input_dim=8, num_classes=3),
            partitions=dataset.partition(4, np.random.default_rng(0)),
            eval_batch=dataset.eval_batch(),
            update_rule=SgdUpdateRule(ConstantSchedule(0.2)),
            compute_model=ComputeTimeModel(mean_time_s=4.0, jitter_sigma=0.1),
            batch_size=32,
            time_scale=0.004,
            tuner=AdaptiveTuner(),
            seed=0,
            live_session=live_session,
        )

    # 1. Exporter-site hit count: records a live-exported run pushes.
    session = LiveTelemetrySession.create(num_workers=4)
    try:
        build(live_session=session).run(0.5)
        site_hits = sum(
            stats["pushed"] + stats["dropped"]
            for stats in session.stats().values()
        )
    finally:
        session.close()
        session.unlink()
    assert site_hits > 0, "the guard run must hit exporter sites"

    # 2. Wall time of the same run with live export disabled.
    start = time.perf_counter()
    build(live_session=None).run(0.5)
    disabled_wall = time.perf_counter() - start

    # 3. The bound.
    overhead_s = site_hits * _null_ring_writer_call_cost_s()
    fraction = overhead_s / disabled_wall
    assert fraction < MAX_OVERHEAD_FRACTION, (
        f"disabled live-export path costs {overhead_s * 1e3:.3f} ms "
        f"({fraction:.2%}) against a {disabled_wall * 1e3:.0f} ms run; "
        f"budget is {MAX_OVERHEAD_FRACTION:.0%}"
    )
