"""Tests for table rendering and formatting helpers."""

import pytest

from repro.utils.tables import TextTable, format_bytes, format_duration


class TestTextTable:
    def test_basic_render(self):
        table = TextTable(["a", "b"])
        table.add_row([1, "xy"])
        out = table.render()
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "-+-" in lines[1]
        assert "1" in lines[2] and "xy" in lines[2]

    def test_title(self):
        table = TextTable(["col"], title="My Table")
        table.add_row(["v"])
        out = table.render()
        assert out.splitlines()[0] == "My Table"
        assert out.splitlines()[1] == "========"

    def test_column_alignment(self):
        table = TextTable(["name", "v"])
        table.add_row(["long-name-here", 1])
        table.add_row(["x", 22])
        lines = table.render().splitlines()
        # separator column of every row lines up
        positions = {line.index("|") for line in lines if "|" in line}
        assert len(positions) == 1

    def test_wrong_cell_count_rejected(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_str_matches_render(self):
        table = TextTable(["a"])
        table.add_row([1])
        assert str(table) == table.render()

    def test_empty_table_renders_headers(self):
        table = TextTable(["only", "headers"])
        out = table.render()
        assert "only" in out and "headers" in out


class TestFormatBytes:
    def test_terabytes_like_paper(self):
        assert format_bytes(3.17e12) == "3.17 TB"
        assert format_bytes(2.00e12) == "2.00 TB"

    def test_small_values(self):
        assert format_bytes(0) == "0 B"
        assert format_bytes(999) == "999 B"

    def test_unit_boundaries(self):
        assert format_bytes(1000) == "1.00 KB"
        assert format_bytes(1_000_000) == "1.00 MB"
        assert format_bytes(1e9) == "1.00 GB"

    def test_huge_value_stays_pb(self):
        assert format_bytes(5e18).endswith("PB")


class TestFormatDuration:
    def test_seconds(self):
        assert format_duration(14.0) == "14.0s"

    def test_minutes(self):
        assert format_duration(90) == "1m30s"

    def test_hours(self):
        assert format_duration(4200) == "1h10m"

    def test_zero(self):
        assert format_duration(0) == "0.0s"
