"""Pure-logic tests for the experiment result dataclasses (no simulations)."""

import pathlib

import pytest

from repro.experiments.fig8_effectiveness import Fig8Cell, Fig8Result
from repro.experiments.fig9_iterations import Fig9Result
from repro.experiments.fig10_heterogeneity import Fig10Result
from repro.experiments.fig11_scalability import Fig11Result
from repro.experiments.fig12_transfer import Fig12Result
from repro.experiments.fig13_breakdown import Fig13Result
from repro.experiments.report import SECTIONS, write_experiments_md


def fig8_result():
    cells = [
        Fig8Cell("mf", "original", "Original (ASP)", result=None,
                 time_to_convergence=900.0),
        Fig8Cell("mf", "adaptive", "SpecSync-Adaptive", result=None,
                 time_to_convergence=300.0),
        Fig8Cell("mf", "cherrypick", "SpecSync-Cherrypick", result=None,
                 time_to_convergence=None),
    ]
    return Fig8Result(cells=cells, targets={"mf": 0.46})


class TestFig8Result:
    def test_speedup(self):
        result = fig8_result()
        assert result.speedup("mf", "adaptive") == pytest.approx(3.0)

    def test_speedup_none_when_not_converged(self):
        result = fig8_result()
        assert result.speedup("mf", "cherrypick") is None

    def test_cell_lookup_error(self):
        with pytest.raises(KeyError):
            fig8_result().cell("mf", "bsp")

    def test_workloads_order(self):
        assert fig8_result().workloads() == ["mf"]

    def test_converged_property(self):
        result = fig8_result()
        assert result.cell("mf", "adaptive").converged
        assert not result.cell("mf", "cherrypick").converged


class TestFig9Result:
    def test_iteration_reduction(self):
        result = Fig9Result(
            curves={},
            iterations_to_target={"mf": {"original": 1000, "adaptive": 420}},
            targets={"mf": 0.46},
        )
        assert result.iteration_reduction("mf") == pytest.approx(0.58)

    def test_reduction_none_when_missing(self):
        result = Fig9Result(
            curves={},
            iterations_to_target={"mf": {"original": None, "adaptive": 10}},
            targets={"mf": 0.46},
        )
        assert result.iteration_reduction("mf") is None


class TestFig10Result:
    def test_speedup_per_cluster(self):
        result = Fig10Result(
            curves={},
            time_to_target={
                "homog": {"original": 1000.0, "adaptive": 400.0},
                "hetero": {"original": 900.0, "adaptive": 600.0},
            },
            target=0.45,
        )
        assert result.speedup("homog") == pytest.approx(2.5)
        assert result.speedup("hetero") == pytest.approx(1.5)

    def test_render_contains_rows(self):
        result = Fig10Result(
            curves={},
            time_to_target={"homog": {"original": None, "adaptive": 300.0}},
            target=0.45,
        )
        text = result.render()
        assert "did not converge" in text
        assert "300s" in text


class TestFig11Result:
    def build(self):
        return Fig11Result(
            time_to_target={
                20: {"original": 800.0, "adaptive": 700.0},
                40: {"original": 900.0, "adaptive": 300.0},
            },
            loss_at_budget={
                20: {"original": 0.50, "adaptive": 0.49},
                40: {"original": 0.50, "adaptive": 0.40},
            },
            budget_s=1000.0,
            target=0.45,
        )

    def test_speedup(self):
        assert self.build().speedup(40) == pytest.approx(3.0)

    def test_loss_improvement(self):
        assert self.build().loss_improvement(40) == pytest.approx(0.2)

    def test_render(self):
        text = self.build().render()
        assert "20" in text and "40" in text and "3.00x" in text


class TestFig12Result:
    def build(self):
        return Fig12Result(
            series={"mf": {"original": [(0, 0)], "adaptive": [(0, 0)]}},
            total_to_convergence={"mf": {"original": 3.17e12, "adaptive": 2.0e12}},
            rate={"mf": {"original": 100.0, "adaptive": 110.0}},
        )

    def test_rate_overhead(self):
        assert self.build().rate_overhead("mf") == pytest.approx(0.10)

    def test_transfer_saving_matches_paper_example(self):
        # The paper's CIFAR example: 3.17 TB -> 2.00 TB ≈ 37% saving.
        assert self.build().transfer_saving("mf") == pytest.approx(0.369, abs=0.01)

    def test_render_formats_tb(self):
        assert "3.17 TB" in self.build().render()


class TestFig13Result:
    def test_control_fraction(self):
        result = Fig13Result(
            breakdown={"mf": {"pull": 600.0, "push": 390.0, "control": 10.0}},
            by_kind={"mf": {"notify": 6.0, "resync": 4.0}},
        )
        assert result.control_fraction("mf") == pytest.approx(0.01)
        assert "mf" in result.render()


class TestReport:
    def test_sections_cover_every_table_and_figure(self):
        ids = {s.exp_id for s in SECTIONS}
        for required in ("Table I", "Table II", "Fig. 3", "Fig. 5", "Fig. 8",
                         "Fig. 9", "Fig. 10", "Fig. 11", "Fig. 12", "Fig. 13"):
            assert required in ids

    def test_write_with_missing_results(self, tmp_path):
        out = tmp_path / "EXPERIMENTS.md"
        text = write_experiments_md(tmp_path, out)
        assert out.exists()
        assert "not yet generated" in text

    def test_write_embeds_available_results(self, tmp_path):
        (tmp_path / "table1.txt").write_text("THE-TABLE-CONTENT")
        out = tmp_path / "EXPERIMENTS.md"
        text = write_experiments_md(tmp_path, out)
        assert "THE-TABLE-CONTENT" in text
        assert "```" in text

    def test_deviations_rendered(self, tmp_path):
        out = tmp_path / "EXPERIMENTS.md"
        text = write_experiments_md(tmp_path, out)
        assert "**Deviation:**" in text


class TestHeadline:
    def test_parses_fig8_table(self, tmp_path):
        from repro.experiments.report import build_headline

        (tmp_path / "fig8_effectiveness.txt").write_text(
            "Fig. 8\n"
            "mf (target 0.46)      | SpecSync-Adaptive   | 366s  | 4.26x | 0.450 | 3042\n"
            "cifar10 (target 0.45) | SpecSync-Adaptive   | 300s  | 2.58x | 0.399 | 572\n"
        )
        headline = build_headline(tmp_path)
        assert headline is not None
        assert "mf 4.26x" in headline
        assert "cifar10 2.58x" in headline

    def test_none_when_missing(self, tmp_path):
        from repro.experiments.report import build_headline

        assert build_headline(tmp_path) is None

    def test_none_when_unparseable(self, tmp_path):
        from repro.experiments.report import build_headline

        (tmp_path / "fig8_effectiveness.txt").write_text("garbage\n")
        assert build_headline(tmp_path) is None
