"""Tests for validation helpers."""

import math

import pytest

from repro.utils.validation import (
    check_in,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 1.5) == 1.5

    def test_accepts_int_and_returns_float(self):
        value = check_positive("x", 3)
        assert value == 3.0 and isinstance(value, float)

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive("x", -1)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_positive("x", math.nan)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive("x", True)

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            check_positive("x", "3")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative("x", -0.001)


class TestCheckProbability:
    def test_accepts_bounds(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            check_probability("p", 1.0001)

    def test_rejects_below_zero(self):
        with pytest.raises(ValueError):
            check_probability("p", -0.1)


class TestCheckIn:
    def test_accepts_member(self):
        assert check_in("mode", "a", ["a", "b"]) == "a"

    def test_rejects_non_member(self):
        with pytest.raises(ValueError, match="mode"):
            check_in("mode", "c", ["a", "b"])

    def test_works_with_generator(self):
        assert check_in("n", 2, (i for i in range(3))) == 2
