"""Tier-1 gate: the repo's own source passes its own static analysis.

Runs the full rule set over the installed ``repro`` package and asserts
zero unsuppressed findings — every waiver must be an explicit
``# repro: allow[rule-id]`` comment with a justification next to it.
"""

import os
import re

import repro
from repro.analysis import LintEngine, render_text, run_lint

PACKAGE_DIR = os.path.dirname(os.path.abspath(repro.__file__))


def test_repro_package_self_lints_clean():
    findings = run_lint([PACKAGE_DIR])
    unsuppressed = [f for f in findings if not f.suppressed]
    assert unsuppressed == [], "\n" + render_text(unsuppressed)


def test_self_lint_exercises_every_rule_pack():
    # The gate is only meaningful if all four packs actually ran.
    rule_ids = {rule.rule_id for rule in LintEngine().rules}
    assert any(r.startswith("DET-") for r in rule_ids)
    assert any(r.startswith("PROTO-") for r in rule_ids)
    assert any(r.startswith("CONC-") for r in rule_ids)
    assert any(r.startswith("FLOW-") for r in rule_ids)
    assert len(rule_ids) >= 17


def test_existing_suppressions_carry_justifications():
    # A waiver without a reason is indistinguishable from a silenced bug:
    # every allow[...] comment must say *why* on the same or previous line.
    pattern = re.compile(r"#\s*repro:\s*allow\[[^\]]+\]\s*(?P<why>.*)")
    for dirpath, dirnames, filenames in os.walk(PACKAGE_DIR):
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for filename in filenames:
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            with open(path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
            for lineno, line in enumerate(lines, start=1):
                match = pattern.search(line)
                if match is None:
                    continue
                why = match.group("why").strip()
                previous = lines[lineno - 2].strip() if lineno >= 2 else ""
                has_context = bool(why) or previous.startswith("#")
                assert has_context, (
                    f"{path}:{lineno} suppression lacks a justification"
                )
