"""Tests for the from-scratch convolutional network."""

import numpy as np
import pytest

from repro.ml.models.convnet import ConvNetModel, _col2im, _im2col


def rng():
    return np.random.default_rng(0)


def batch(model, n=10, seed=1):
    r = np.random.default_rng(seed)
    X = r.normal(size=(n, model.input_dim))
    y = r.integers(0, model.num_classes, size=n)
    return X, y


class TestIm2Col:
    def test_shapes(self):
        images = rng().normal(size=(2, 3, 5, 5))
        cols = _im2col(images, kernel=3)
        assert cols.shape == (2, 3, 3, 27)

    def test_patch_contents(self):
        images = np.arange(16.0).reshape(1, 1, 4, 4)
        cols = _im2col(images, kernel=2)
        # first patch (top-left): rows [0,1], [4,5]
        np.testing.assert_allclose(cols[0, 0, 0], [0, 1, 4, 5])
        # last patch (bottom-right): [10,11,14,15]
        np.testing.assert_allclose(cols[0, 2, 2], [10, 11, 14, 15])

    def test_col2im_is_adjoint(self):
        """<im2col(x), y> == <x, col2im(y)> — the defining adjoint property."""
        r = rng()
        shape = (2, 3, 6, 5)
        kernel = 3
        x = r.normal(size=shape)
        cols = _im2col(x, kernel)
        y = r.normal(size=cols.shape)
        lhs = float(np.sum(cols * y))
        rhs = float(np.sum(x * _col2im(y, shape, kernel)))
        assert lhs == pytest.approx(rhs)


class TestConvNet:
    def make(self, **kwargs):
        defaults = dict(image_shape=(2, 6, 6), num_classes=3,
                        num_filters=4, kernel=3, reg=1e-3)
        defaults.update(kwargs)
        return ConvNetModel(**defaults)

    def test_param_shapes(self):
        model = self.make()
        params = model.init_params(rng())
        assert params["conv_w"].shape == (2 * 9, 4)
        assert params["conv_b"].shape == (4,)
        assert params["fc_w"].shape == (4, 3)
        assert params["fc_b"].shape == (3,)

    def test_gradient_matches_finite_differences(self):
        model = self.make(reg=0.0)
        params = model.init_params(rng())
        assert model.check_gradient(params, batch(model), sample_size=40) < 1e-4

    def test_gradient_with_regularization(self):
        model = self.make(reg=1e-2)
        params = model.init_params(rng())
        assert model.check_gradient(params, batch(model), sample_size=30) < 1e-4

    def test_loss_decreases_under_gd(self):
        model = self.make()
        params = model.init_params(rng())
        X, y = batch(model, n=60, seed=3)
        first = model.loss(params, (X, y))
        for _ in range(120):
            _, grad = model.loss_and_grad(params, (X, y))
            params.add_scaled(grad, -0.5)
        assert model.loss(params, (X, y)) < first

    def test_trains_on_synthetic_images(self):
        from repro.ml import SyntheticImageDataset

        model = self.make(image_shape=(1, 5, 5), num_classes=3, kernel=3)
        dataset = SyntheticImageDataset(
            num_classes=3, feature_dim=25, num_samples=800,
            class_separation=3.5, warp=False, seed=2,
        )
        params = model.init_params(rng())
        r = np.random.default_rng(0)
        X, y = dataset.gather(np.arange(dataset.num_samples))
        first = model.loss(params, dataset.eval_batch())
        for _ in range(250):
            idx = r.integers(0, len(X), size=64)
            _, grad = model.loss_and_grad(params, (X[idx], y[idx]))
            params.add_scaled(grad, -0.3)
        final = model.loss(params, dataset.eval_batch())
        assert final < first * 0.75
        assert model.accuracy(params, dataset.eval_batch()) > 0.5

    def test_accuracy_bounds(self):
        model = self.make()
        params = model.init_params(rng())
        acc = model.accuracy(params, batch(model))
        assert 0.0 <= acc <= 1.0

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError):
            self.make(image_shape=(0, 4, 4))
        with pytest.raises(ValueError):
            self.make(kernel=9)  # larger than the 6x6 image
        with pytest.raises(ValueError):
            self.make(num_classes=1)

    def test_bad_batch_rejected(self):
        model = self.make()
        params = model.init_params(rng())
        with pytest.raises(ValueError):
            model.loss(params, (np.zeros((4, 10)), np.zeros(4, dtype=int)))

    def test_runs_in_training_engine(self):
        """End-to-end: the conv net plugs into the simulated cluster."""
        from repro import AspPolicy, ClusterSpec, ConvergenceCriterion
        from repro.cluster.compute import ComputeTimeModel
        from repro.ml import SyntheticImageDataset
        from repro.ml.optim import ConstantSchedule, SgdUpdateRule
        from repro.workloads import Workload

        workload = Workload(
            name="convnet-test",
            model_factory=lambda: ConvNetModel(
                image_shape=(1, 5, 5), num_classes=3, num_filters=4, kernel=3
            ),
            dataset_factory=lambda s: SyntheticImageDataset(
                num_classes=3, feature_dim=25, num_samples=600,
                class_separation=3.5, warp=False, seed=2,
            ),
            update_rule_factory=lambda: SgdUpdateRule(ConstantSchedule(0.3)),
            batch_size=24,
            base_compute=ComputeTimeModel(mean_time_s=1.0, jitter_sigma=0.1),
            param_wire_bytes=1e5,
            convergence=ConvergenceCriterion(0.6, 3),
            default_horizon_s=40.0,
            eval_interval_s=4.0,
        )
        result = workload.run(ClusterSpec.homogeneous(3), AspPolicy(), seed=0)
        assert result.final_loss < result.curve[0].loss
