"""Tests for the threaded real-time backend."""

import numpy as np
import pytest

from repro.cluster.compute import ComputeTimeModel
from repro.core.hyperparams import SpecSyncHyperparams
from repro.core.tuning import AdaptiveTuner, FixedTuner
from repro.ml import SoftmaxRegressionModel, SyntheticImageDataset
from repro.ml.optim import ConstantSchedule, SgdUpdateRule
from repro.ml.params import ParamSet
from repro.runtime import ThreadedParameterServer, ThreadedRun


def build_run(num_workers=4, tuner=None, time_scale=0.002, seed=0,
              mean_time_s=3.0, **kwargs):
    dataset = SyntheticImageDataset(
        num_classes=3, feature_dim=8, num_samples=800,
        class_separation=3.0, warp=False, seed=0,
    )
    partitions = dataset.partition(num_workers, np.random.default_rng(0))
    model = SoftmaxRegressionModel(input_dim=8, num_classes=3)
    return ThreadedRun(
        model=model,
        partitions=partitions,
        eval_batch=dataset.eval_batch(),
        update_rule=SgdUpdateRule(ConstantSchedule(0.2)),
        compute_model=ComputeTimeModel(mean_time_s=mean_time_s, jitter_sigma=0.1),
        batch_size=32,
        time_scale=time_scale,
        tuner=tuner,
        seed=seed,
        **kwargs,
    )


class TestThreadedParameterServer:
    def test_pull_is_snapshot(self):
        server = ThreadedParameterServer(
            ParamSet({"w": np.array([1.0])}),
            SgdUpdateRule(ConstantSchedule(0.5)),
        )
        snapshot, version = server.pull()
        server.push(ParamSet({"w": np.array([1.0])}), version)
        np.testing.assert_allclose(snapshot["w"], [1.0])
        assert server.version == 1

    def test_staleness_from_version_gap(self):
        server = ThreadedParameterServer(
            ParamSet({"w": np.array([0.0])}),
            SgdUpdateRule(ConstantSchedule(0.1)),
        )
        _, version = server.pull()
        server.push(ParamSet({"w": np.array([1.0])}), version)
        staleness = server.push(ParamSet({"w": np.array([1.0])}), version)
        assert staleness == 1
        assert server.mean_staleness() == pytest.approx(0.5)

    def test_concurrent_pushes_all_applied(self):
        import threading

        server = ThreadedParameterServer(
            ParamSet({"w": np.zeros(1)}),
            SgdUpdateRule(ConstantSchedule(1.0)),
        )
        gradient = ParamSet({"w": np.array([-1.0])})

        def push_many():
            for _ in range(50):
                _, version = server.pull()
                server.push(gradient, version)

        threads = [threading.Thread(target=push_many) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert server.version == 200
        np.testing.assert_allclose(server.pull()[0]["w"], [200.0])


class TestThreadedRunAsp:
    def test_workers_make_progress(self):
        result = build_run(tuner=None).run(0.3)
        assert result.total_iterations > 0
        assert result.total_aborts == 0
        assert result.resyncs_sent == 0

    def test_loss_improves(self):
        run = build_run(tuner=None, time_scale=0.0005)
        initial_params, _ = run.server.pull()
        initial_loss = run.model.loss(initial_params, run.eval_batch)
        result = run.run(0.5)
        assert result.final_loss < initial_loss

    def test_staleness_positive_with_concurrency(self):
        result = build_run(num_workers=6, tuner=None).run(0.4)
        assert result.mean_staleness > 0


class TestThreadedRunSpecSync:
    def test_fixed_tuner_aborts(self):
        # Window ≈ half the (scaled) iteration time, low threshold.
        tuner = FixedTuner(SpecSyncHyperparams(abort_time_s=0.003, abort_rate=0.3))
        result = build_run(num_workers=6, tuner=tuner).run(0.4)
        assert result.resyncs_sent > 0
        assert result.total_aborts > 0

    def test_adaptive_tuner_completes_epochs(self):
        result = build_run(num_workers=4, tuner=AdaptiveTuner()).run(0.5)
        assert result.epochs_tuned > 0

    def test_aborts_bounded_by_resyncs(self):
        tuner = FixedTuner(SpecSyncHyperparams(abort_time_s=0.003, abort_rate=0.3))
        result = build_run(num_workers=6, tuner=tuner).run(0.4)
        assert result.total_aborts <= result.resyncs_sent

    def test_unreachable_threshold_never_aborts(self):
        tuner = FixedTuner(SpecSyncHyperparams(abort_time_s=0.001, abort_rate=10.0))
        result = build_run(num_workers=4, tuner=tuner).run(0.3)
        assert result.total_aborts == 0


class TestValidation:
    def test_empty_partitions_rejected(self):
        with pytest.raises(ValueError):
            ThreadedRun(
                model=SoftmaxRegressionModel(4, 2),
                partitions=[],
                eval_batch=None,
                update_rule=SgdUpdateRule(ConstantSchedule(0.1)),
                compute_model=ComputeTimeModel(mean_time_s=1.0),
            )

    def test_bad_time_scale_rejected(self):
        dataset = SyntheticImageDataset(
            num_classes=2, feature_dim=4, num_samples=100, seed=0
        )
        with pytest.raises(ValueError):
            ThreadedRun(
                model=SoftmaxRegressionModel(4, 2),
                partitions=dataset.partition(1, np.random.default_rng(0)),
                eval_batch=dataset.eval_batch(),
                update_rule=SgdUpdateRule(ConstantSchedule(0.1)),
                compute_model=ComputeTimeModel(mean_time_s=1.0),
                time_scale=0.0,
            )

    def test_bad_duration_rejected(self):
        run = build_run()
        with pytest.raises(ValueError):
            run.run(0.0)
