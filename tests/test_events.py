"""Tests for the discrete-event simulation kernel."""

import pytest
from hypothesis import given, strategies as st

from repro.events import Event, EventCanceled, SimulationError, Simulator


class TestEventOrdering:
    def test_orders_by_time(self):
        a = Event(1.0, 0, lambda: None, ())
        b = Event(2.0, 1, lambda: None, ())
        assert a < b

    def test_ties_break_by_sequence(self):
        a = Event(1.0, 0, lambda: None, ())
        b = Event(1.0, 1, lambda: None, ())
        assert a < b and not b < a


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, fired.append, "c")
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fire_in_schedule_order(self):
        sim = Simulator()
        fired = []
        for name in "abcd":
            sim.schedule(5.0, fired.append, name)
        sim.run()
        assert fired == ["a", "b", "c", "d"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_zero_delay_fires_without_advancing_clock(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: sim.schedule(0.0, lambda: None))
        sim.run()
        assert sim.now == 1.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(3.0, lambda: None)

    def test_events_scheduled_during_run_fire(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: sim.schedule(1.0, fired.append, "nested"))
        sim.run()
        assert fired == ["nested"]
        assert sim.now == 2.0


class TestCancellation:
    def test_canceled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_after_fire_raises(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(EventCanceled):
            event.cancel()

    def test_pending_property(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        assert event.pending
        event.cancel()
        assert not event.pending

    def test_pending_count_skips_canceled(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        drop.cancel()
        assert sim.pending_count == 1
        assert keep.pending


class TestRunControl:
    def test_until_is_inclusive(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, "at-2")
        sim.schedule(2.5, fired.append, "at-2.5")
        sim.run(until=2.0)
        assert fired == ["at-2"]
        assert sim.now == 2.0

    def test_resume_after_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(3.0, fired.append, 3)
        sim.run(until=2.0)
        sim.run()
        assert fired == [1, 3]

    def test_stop_when_predicate(self):
        sim = Simulator()
        fired = []
        for t in range(1, 6):
            sim.schedule(float(t), fired.append, t)
        sim.run(stop_when=lambda: len(fired) >= 3)
        assert fired == [1, 2, 3]

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for t in range(1, 6):
            sim.schedule(float(t), fired.append, t)
        sim.run(max_events=2)
        assert fired == [1, 2]

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_not_reentrant(self):
        sim = Simulator()
        errors = []

        def reenter():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(1.0, reenter)
        sim.run()
        assert len(errors) == 1

    def test_events_fired_counter(self):
        sim = Simulator()
        for t in range(3):
            sim.schedule(float(t + 1), lambda: None)
        sim.run()
        assert sim.events_fired == 3

    def test_peek_time(self):
        sim = Simulator()
        assert sim.peek_time() is None
        sim.schedule(4.0, lambda: None)
        assert sim.peek_time() == 4.0


class TestPropertyBased:
    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
    def test_firing_order_is_sorted(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(d))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(
        st.lists(st.floats(min_value=0, max_value=100), min_size=2, max_size=30),
        st.data(),
    )
    def test_cancellation_removes_exactly_the_canceled(self, delays, data):
        sim = Simulator()
        events = [sim.schedule(d, lambda d=d: fired.append(d)) for d in delays]
        fired = []
        to_cancel = data.draw(
            st.sets(st.integers(min_value=0, max_value=len(events) - 1))
        )
        for idx in to_cancel:
            events[idx].cancel()
        sim.run()
        expected = sorted(d for i, d in enumerate(delays) if i not in to_cancel)
        assert fired == expected


class TestTapBus:
    """The multi-subscriber event-tap bus (observability + sanitizers)."""

    @pytest.fixture(autouse=True)
    def _clean_bus(self):
        Simulator.remove_tap()
        yield
        Simulator.remove_tap()

    def test_taps_see_every_event_in_installation_order(self):
        calls = []
        Simulator.install_tap(lambda t, s, f, a: calls.append(("first", t)))
        Simulator.install_tap(lambda t, s, f, a: calls.append(("second", t)))
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert calls == [
            ("first", 1.0), ("second", 1.0), ("first", 2.0), ("second", 2.0)
        ]

    def test_duplicate_install_raises(self):
        def tap(t, s, f, a):
            pass

        Simulator.install_tap(tap)
        with pytest.raises(SimulationError):
            Simulator.install_tap(tap)

    def test_remove_specific_tap_leaves_the_rest(self):
        calls = []

        def doomed(t, s, f, a):
            calls.append("doomed")

        def survivor(t, s, f, a):
            calls.append("survivor")

        Simulator.install_tap(doomed)
        Simulator.install_tap(survivor)
        Simulator.remove_tap(doomed)
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert calls == ["survivor"]

    def test_bare_remove_clears_all_taps(self):
        Simulator.install_tap(lambda t, s, f, a: None)
        Simulator.install_tap(lambda t, s, f, a: None)
        Simulator.remove_tap()
        assert Simulator._taps == ()

    def test_tap_receives_callback_and_args(self):
        seen = []
        Simulator.install_tap(lambda t, s, f, a: seen.append((t, s, f, a)))
        sim = Simulator()

        def callback(value):
            pass

        sim.schedule(1.5, callback, 42)
        sim.run()
        assert seen == [(1.5, 0, callback, (42,))]


class TestDeferRecycling:
    """defer(): fire-and-forget scheduling with Event slot recycling."""

    def test_defer_fires_in_time_order_with_scheduled_events(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("scheduled"))
        sim.defer(1.0, order.append, "deferred")
        sim.run()
        assert order == ["deferred", "scheduled"]
        assert sim.now == 2.0

    def test_defer_shares_the_seq_counter_for_tie_breaks(self):
        # determinism contract: interleaved schedule()/defer() at the same
        # time fire in call order, exactly as two schedule() calls would
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append("a"))
        sim.defer(1.0, order.append, "b")
        sim.schedule(1.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_defer_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.defer(-0.1, lambda: None)

    def test_fired_event_slot_is_reused(self):
        sim = Simulator()
        sim.defer(1.0, lambda: None)
        sim.run()
        assert len(sim._free) == 1
        recycled = sim._free[0]
        hits = []
        sim.defer(1.0, hits.append, "again")
        assert sim._free == []  # the slot was taken back out
        sim.run()
        assert hits == ["again"]
        assert sim._free[0] is recycled

    def test_recycled_slot_drops_callback_references(self):
        # the free list must not pin the callback or its arguments alive
        sim = Simulator()
        payload = object()
        sim.defer(0.5, lambda _p: None, payload)
        sim.run()
        (slot,) = sim._free
        assert slot.args == ()
        assert slot.fn.__name__ == "_recycled"

    def test_free_list_is_bounded(self):
        sim = Simulator()
        for _ in range(Simulator._FREE_MAX + 50):
            sim.defer(1.0, lambda: None)
        sim.run()
        assert len(sim._free) == Simulator._FREE_MAX

    def test_scheduled_events_are_never_recycled(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim._free == []
        assert handle.fired and not handle.recycle

    def test_taps_see_deferred_events(self):
        seen = []
        Simulator.install_tap(lambda t, s, f, a: seen.append((t, a)))
        try:
            sim = Simulator()
            sim.defer(1.0, lambda tag: None, "x")
            sim.run()
        finally:
            Simulator.remove_tap()
        assert seen == [(1.0, ("x",))]
