"""One parametrized invariant suite run against every scheme.

Whatever the synchronization policy, a finished run must satisfy the same
structural facts; this catches policy bugs that scheme-specific tests miss.
"""

import pytest

from repro import (
    AspPolicy,
    BspPolicy,
    ClusterSpec,
    NaiveWaitingPolicy,
    SpecSyncHyperparams,
    SpecSyncPolicy,
    SspPolicy,
)
from repro.workloads import tiny_workload

SCHEMES = {
    "asp": AspPolicy,
    "bsp": BspPolicy,
    "ssp0": lambda: SspPolicy(0),
    "ssp3": lambda: SspPolicy(3),
    "naive": lambda: NaiveWaitingPolicy(0.5),
    "specsync-adaptive": SpecSyncPolicy.adaptive,
    "specsync-cherrypick": lambda: SpecSyncPolicy.cherrypick(
        SpecSyncHyperparams(0.2, 0.3)
    ),
    "specsync+ssp": lambda: SpecSyncPolicy.adaptive(base_policy=SspPolicy(2)),
}


@pytest.fixture(scope="module", params=sorted(SCHEMES), ids=sorted(SCHEMES))
def run_result(request):
    workload = tiny_workload()
    cluster = ClusterSpec.homogeneous(4)
    return workload.run(cluster, SCHEMES[request.param](), seed=6,
                        horizon_s=50.0)


class TestUniversalInvariants:
    def test_progress(self, run_result):
        assert run_result.total_iterations > 0
        assert all(w.iterations > 0 for w in run_result.worker_stats)

    def test_version_sequence(self, run_result):
        versions = [p.version_after for p in run_result.traces.pushes]
        assert versions == list(range(1, len(versions) + 1))

    def test_staleness_bounds(self, run_result):
        for push in run_result.traces.pushes:
            assert push.staleness >= 0
            assert push.snapshot_version < push.version_after

    def test_pull_push_conservation(self, run_result):
        for stats in run_result.worker_stats:
            assert stats.pushes <= stats.pulls
            assert stats.pulls <= stats.pushes + stats.aborts + 1

    def test_aborts_only_from_specsync(self, run_result):
        if not run_result.scheme.startswith("specsync"):
            assert run_result.total_aborts == 0

    def test_curve_progression(self, run_result):
        assert len(run_result.curve) > 5
        assert run_result.final_loss < run_result.curve[0].loss

    def test_ledger_consistency(self, run_result):
        by_category = run_result.ledger.bytes_by_category()
        assert sum(by_category.values()) == pytest.approx(
            run_result.ledger.total_bytes
        )
        assert by_category.get("pull", 0) > 0
        assert by_category.get("push", 0) > 0

    def test_pull_traffic_at_least_push_traffic(self, run_result):
        """Every iteration pulls at least once (restarts add more)."""
        by_kind = run_result.ledger.bytes_by_kind()
        assert by_kind["pull_response"] >= by_kind["push"] * 0.9

    def test_mean_iteration_time_positive(self, run_result):
        for stats in run_result.worker_stats:
            assert stats.mean_iteration_time > 0

    def test_summary_renders(self, run_result):
        summary = run_result.summary()
        assert summary["scheme"] == run_result.scheme
        assert summary["iterations"] == run_result.total_iterations
