"""Fuzz tests: adversarial policies must never break engine invariants.

A policy that requests re-syncs, delays, and gating at random times is run
against the engine; whatever it does, the run must preserve the core
invariants (versions increase, staleness non-negative, no lost workers,
conservation between pulls/pushes/aborts).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import ClusterSpec
from repro.ps.policy import SyncPolicy
from repro.workloads import tiny_workload


class ChaosPolicy(SyncPolicy):
    """Randomly delays pulls, gates iterations briefly, and fires re-syncs."""

    def __init__(self, seed: int, resync_prob: float, delay_max: float,
                 park_prob: float):
        super().__init__()
        self.rng = np.random.default_rng(seed)
        self.resync_prob = resync_prob
        self.delay_max = delay_max
        self.park_prob = park_prob
        self._parked = []

    @property
    def name(self) -> str:
        return "chaos"

    def pull_delay(self, worker_id: int) -> float:
        return float(self.rng.random() * self.delay_max)

    def can_start_iteration(self, worker_id: int) -> bool:
        if self.rng.random() < self.park_prob:
            self._parked.append(worker_id)
            return False
        return True

    def on_push_applied(self, record) -> None:
        # Randomly try to abort *any* worker, with arbitrary (often wrong)
        # iteration tags — the engine must reject invalid ones safely.
        if self.rng.random() < self.resync_prob:
            target = int(self.rng.integers(0, self.engine.num_workers))
            view = self.engine.worker_view(target)
            tag = view.iterations_completed + int(self.rng.integers(-1, 2))
            self.engine.request_resync(target, tag)
        # Wake one parked worker per push so nothing starves forever.
        if self._parked:
            self.engine.release_worker(self._parked.pop(0))

    def on_run_end(self) -> None:
        # Release everything still parked (end-of-run cleanliness).
        while self._parked:
            self.engine.release_worker(self._parked.pop(0))


def run_chaos(seed, resync_prob, delay_max, park_prob, horizon=40.0):
    policy = ChaosPolicy(seed, resync_prob, delay_max, park_prob)
    return tiny_workload().run(
        ClusterSpec.homogeneous(4), policy, seed=seed, horizon_s=horizon
    )


class TestChaosInvariants:
    @settings(deadline=None, max_examples=12)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        resync_prob=st.floats(min_value=0.0, max_value=1.0),
        delay_max=st.floats(min_value=0.0, max_value=2.0),
        park_prob=st.floats(min_value=0.0, max_value=0.5),
    )
    def test_invariants_under_chaos(self, seed, resync_prob, delay_max, park_prob):
        result = run_chaos(seed, resync_prob, delay_max, park_prob)

        # Versions strictly increase; staleness is never negative.
        versions = [p.version_after for p in result.traces.pushes]
        assert versions == sorted(set(versions))
        assert all(p.staleness >= 0 for p in result.traces.pushes)

        # Conservation: pulls = pushes + aborts + in-flight (≤ 1/worker),
        # allowing for the final pull whose iteration never completed.
        for stats in result.worker_stats:
            assert stats.pulls >= stats.pushes
            assert stats.pulls <= stats.pushes + stats.aborts + 1

        # Abort accounting matches the trace.
        assert result.total_aborts == len(result.traces.aborts)

        # Evaluations kept running regardless of policy behaviour.
        assert len(result.curve) > 0

    def test_heavy_resync_still_progresses(self):
        result = run_chaos(seed=7, resync_prob=1.0, delay_max=0.0,
                           park_prob=0.0, horizon=60.0)
        assert result.total_iterations > 0
        assert result.total_aborts > 0

    def test_resync_with_wrong_tag_is_rejected(self):
        """A re-sync tagged with a stale iteration index must be a no-op."""
        policy = ChaosPolicy(0, 0.0, 0.0, 0.0)
        workload = tiny_workload()
        engine = workload.build_engine(
            ClusterSpec.homogeneous(2), policy, seed=0, horizon_s=10.0
        )
        engine.run()
        view = engine.worker_view(0)
        # A tag from a *previous* iteration is always refused, whether or
        # not the worker still has an in-flight computation at the horizon.
        assert engine.request_resync(0, view.iterations_completed - 1) is False
        if not view.computing:
            assert engine.request_resync(0, view.iterations_completed) is False

    def test_resync_refused_after_early_stop(self):
        policy = ChaosPolicy(0, 0.0, 0.0, 0.0)
        workload = tiny_workload()
        engine = workload.build_engine(
            ClusterSpec.homogeneous(2), policy, seed=0, horizon_s=100.0,
            early_stop=True,
        )
        engine.run()
        view = engine.worker_view(0)
        # The run stopped on convergence: all re-syncs are refused.
        assert engine.request_resync(0, view.iterations_completed) is False

    def test_release_of_unparked_worker_is_noop(self):
        policy = ChaosPolicy(0, 0.0, 0.0, 0.0)
        workload = tiny_workload()
        engine = workload.build_engine(
            ClusterSpec.homogeneous(2), policy, seed=0, horizon_s=5.0
        )
        result = engine.run()
        before = engine.store.version
        engine.release_worker(0)  # not parked: nothing should happen
        assert engine.store.version == before
        assert result.total_iterations > 0
