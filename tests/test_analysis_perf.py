"""Fixture tests for the PERF-* rule pack and its hotness layer.

Each rule gets true positives and true negatives run through
``lint_source`` exactly like the real engine runs files; the hotness
tests bind a :class:`HotnessModel` the same way ``repro lint --profile``
does and check the info → warning escalation.
"""

import ast
import json
import textwrap

import pytest

from repro.analysis.engine import lint_source
from repro.analysis.flow.cfg import build_cfg
from repro.analysis.perfmodel import (
    HotnessModel,
    ProfileError,
    load_hot_profile,
    natural_loops,
)
from repro.analysis.rules import RULE_PACKS, default_rules, rules_for
from repro.analysis.rules.perf import (
    AllocHotRule,
    AttrLoopRule,
    LogHotRule,
    NumpyCopyRule,
    PicklePayloadRule,
    ScanRule,
)
from repro.cli import main

ZONE = "repro.runtime.fixture"


def _lint(source, rules, module=ZONE, hotness=None):
    if hotness is not None:
        for rule in rules:
            rule.hotness = hotness
    findings = lint_source(textwrap.dedent(source), module=module, rules=rules)
    return [f for f in findings if not f.suppressed]


def _ids(findings):
    return [f.rule_id for f in findings]


def _loops_of(source, name="f"):
    tree = ast.parse(textwrap.dedent(source))
    fn = next(n for n in tree.body if getattr(n, "name", None) == name)
    return natural_loops(build_cfg(fn))


# ----------------------------------------------------------------------
# natural_loops — loop recovery from the CFG
# ----------------------------------------------------------------------
class TestNaturalLoops:
    def test_plain_for_loop_is_a_loop(self):
        # Regression: the CFG only tags `continue` edges as kind "back";
        # the ordinary body-end -> head edge keeps the body's dangling
        # kind, so plain loops must be recovered from retreating edges.
        (loop,) = _loops_of('''
            def f(xs):
                out = []
                for x in xs:
                    out.append(x)
                return out
        ''')
        assert loop.header_line == 4
        assert {4, 5} <= loop.lines

    def test_plain_while_loop_is_a_loop(self):
        (loop,) = _loops_of('''
            def f(n):
                i = 0
                while i < n:
                    i += 1
                return i
        ''')
        assert loop.header_line == 4

    def test_continue_merges_into_one_loop(self):
        (loop,) = _loops_of('''
            def f(xs):
                out = []
                for x in xs:
                    if x:
                        continue
                    out.append(x)
                return out
        ''')
        assert loop.header_line == 4
        assert {4, 5, 6, 7} <= loop.lines

    def test_nested_loops_get_depths(self):
        loops = _loops_of('''
            def f(m):
                total = 0
                while total < m:
                    for j in range(3):
                        total += j
                return total
        ''')
        assert [(l.header_line, l.depth) for l in loops] == [(4, 1), (5, 2)]

    def test_straight_line_code_has_no_loops(self):
        assert _loops_of('''
            def f(x):
                y = x + 1
                return y
        ''') == []


# ----------------------------------------------------------------------
# PERF-ALLOC-HOT
# ----------------------------------------------------------------------
class TestAllocHot:
    def test_tp_object_construction_in_loop(self):
        findings = _lint('''
            def f(items):
                out = []
                for item in items:
                    out.append(Record(item))
                return out
        ''', [AllocHotRule()])
        assert _ids(findings) == ["PERF-ALLOC-HOT"]
        assert "Record(...)" in findings[0].message
        assert "line 4" in findings[0].message

    def test_tp_container_builtin_in_loop(self):
        findings = _lint('''
            def f(items):
                for item in items:
                    scratch = dict(a=item)
                    use(scratch)
        ''', [AllocHotRule()])
        assert _ids(findings) == ["PERF-ALLOC-HOT"]

    def test_tn_allocation_outside_loop(self):
        findings = _lint('''
            def f(items):
                scratch = dict()
                for item in items:
                    scratch[item] = item
                return scratch
        ''', [AllocHotRule()])
        assert findings == []

    def test_tn_raise_in_loop_is_error_path(self):
        findings = _lint('''
            def f(items):
                for item in items:
                    if item < 0:
                        raise ValueError(f"bad {item}")
        ''', [AllocHotRule()])
        assert findings == []


# ----------------------------------------------------------------------
# PERF-NUMPY-COPY
# ----------------------------------------------------------------------
class TestNumpyCopy:
    def test_tp_np_array_on_nonliteral(self):
        findings = _lint('''
            import numpy as np

            def f(value):
                return np.array(value, dtype=np.float64)
        ''', [NumpyCopyRule()])
        assert _ids(findings) == ["PERF-NUMPY-COPY"]
        assert "always copies" in findings[0].message

    def test_tn_np_array_with_explicit_copy(self):
        findings = _lint('''
            import numpy as np

            def f(value):
                return np.array(value, dtype=np.float64, copy=True)
        ''', [NumpyCopyRule()])
        assert findings == []

    def test_tn_np_array_on_literal(self):
        findings = _lint('''
            import numpy as np

            def f():
                return np.array([1.0, 2.0])
        ''', [NumpyCopyRule()])
        assert findings == []

    def test_tp_astype_without_copy_kw(self):
        findings = _lint('''
            def f(arr):
                return arr.astype("float64")
        ''', [NumpyCopyRule()])
        assert _ids(findings) == ["PERF-NUMPY-COPY"]

    def test_tp_asarray_dtype_in_loop(self):
        findings = _lint('''
            import numpy as np

            def f(grads):
                out = 0.0
                for grad in grads:
                    out += np.asarray(grad, dtype=np.float64).sum()
                return out
        ''', [NumpyCopyRule()])
        assert _ids(findings) == ["PERF-NUMPY-COPY"]
        assert "iteration of the loop" in findings[0].message

    def test_tn_asarray_dtype_outside_loop(self):
        findings = _lint('''
            import numpy as np

            def f(grad):
                return np.asarray(grad, dtype=np.float64)
        ''', [NumpyCopyRule()])
        assert findings == []

    def test_tp_fancy_index_gather_in_loop(self):
        findings = _lint('''
            def f(grad_vector, batches):
                total = 0.0
                for row_ids in batches:
                    total += grad_vector[row_ids].sum()
                return total
        ''', [NumpyCopyRule()])
        assert _ids(findings) == ["PERF-NUMPY-COPY"]
        assert "gathered" in findings[0].message


# ----------------------------------------------------------------------
# PERF-PICKLE-PAYLOAD
# ----------------------------------------------------------------------
class TestPicklePayload:
    def test_tp_array_on_mp_queue_is_warning_by_default(self):
        findings = _lint('''
            import multiprocessing

            def f(queue, gradient):
                queue.put(("push", gradient))
        ''', [PicklePayloadRule()])
        assert _ids(findings) == ["PERF-PICKLE-PAYLOAD"]
        assert findings[0].severity.name == "WARNING"
        assert "pickles an" in findings[0].message

    def test_tn_without_multiprocessing_import(self):
        findings = _lint('''
            def f(queue, gradient):
                queue.put(("push", gradient))
        ''', [PicklePayloadRule()])
        assert findings == []

    def test_tn_control_message_payload(self):
        findings = _lint('''
            import multiprocessing

            def f(queue):
                queue.put(("stop", 1))
        ''', [PicklePayloadRule()])
        assert findings == []


# ----------------------------------------------------------------------
# PERF-ATTR-LOOP
# ----------------------------------------------------------------------
class TestAttrLoop:
    def test_tp_repeated_chain_in_loop(self):
        findings = _lint('''
            def f(self, items):
                for item in items:
                    first(self.stats.scale)
                    second(self.stats.scale)
        ''', [AttrLoopRule()])
        assert "PERF-ATTR-LOOP" in _ids(findings)
        assert any("'self.stats.scale'" in f.message for f in findings)

    def test_tn_single_lookup_per_iteration(self):
        findings = _lint('''
            def f(self, items):
                for item in items:
                    self.sink.write(item)
        ''', [AttrLoopRule()])
        assert findings == []

    def test_tn_rebound_root_is_not_hoistable(self):
        findings = _lint('''
            def f(rows):
                for row in rows:
                    row = transform(row)
                    use(row.cells.first)
                    use(row.cells.last)
        ''', [AttrLoopRule()])
        assert findings == []


# ----------------------------------------------------------------------
# PERF-LOG-HOT
# ----------------------------------------------------------------------
class TestLogHot:
    def test_tp_fstring_to_logger(self):
        findings = _lint('''
            def f(logger, x):
                logger.debug(f"x is now {x}")
        ''', [LogHotRule()])
        assert _ids(findings) == ["PERF-LOG-HOT"]
        assert "f-string" in findings[0].message

    def test_tp_eager_percent_formatting(self):
        findings = _lint('''
            def f(log, x):
                log.info("x=%s" % x)
        ''', [LogHotRule()])
        assert _ids(findings) == ["PERF-LOG-HOT"]

    def test_tn_lazy_percent_args(self):
        findings = _lint('''
            def f(logger, x):
                logger.debug("x is now %s", x)
        ''', [LogHotRule()])
        assert findings == []

    def test_tn_non_logger_receiver(self):
        findings = _lint('''
            def f(sink, x):
                sink.debug(f"x is now {x}")
        ''', [LogHotRule()])
        assert findings == []


# ----------------------------------------------------------------------
# PERF-SCAN
# ----------------------------------------------------------------------
class TestScan:
    def test_tp_membership_on_list_in_loop(self):
        findings = _lint('''
            def f(items):
                seen = []
                for item in items:
                    if item in seen:
                        continue
                    seen.append(item)
                return seen
        ''', [ScanRule()])
        assert _ids(findings) == ["PERF-SCAN"]
        assert "list 'seen'" in findings[0].message

    def test_tp_index_on_list_in_loop(self):
        findings = _lint('''
            def f(items):
                order = list(items)
                for item in items:
                    use(order.index(item))
        ''', [ScanRule()])
        assert _ids(findings) == ["PERF-SCAN"]

    def test_tn_membership_on_set(self):
        findings = _lint('''
            def f(items):
                seen = set()
                for item in items:
                    if item in seen:
                        continue
                    seen.add(item)
                return seen
        ''', [ScanRule()])
        assert findings == []

    def test_tn_scan_outside_loop(self):
        findings = _lint('''
            def f(items, probe):
                order = list(items)
                return probe in order
        ''', [ScanRule()])
        assert findings == []


# ----------------------------------------------------------------------
# Hotness: profile-driven escalation
# ----------------------------------------------------------------------
HOT_SOURCE = '''
    class Engine:
        def on_compute_done(self, items):
            out = []
            for item in items:
                out.append(Record(item))
            return out

    class Reporter:
        def render(self, items):
            out = []
            for item in items:
                out.append(Record(item))
            return out
'''


class TestHotnessEscalation:
    def test_hot_function_escalates_cold_stays_info(self):
        hotness = HotnessModel({"Engine.on_compute_done": 500})
        findings = _lint(HOT_SOURCE, [AllocHotRule()], hotness=hotness)
        by_line = {f.line: f for f in findings}
        hot = by_line[6]      # inside Engine.on_compute_done
        cold = by_line[13]    # inside Reporter.render
        assert hot.severity.name == "WARNING"
        assert "hot path" in hot.message
        assert "500" in hot.message
        assert cold.severity.name == "INFO"
        assert "hot path" not in cold.message

    def test_no_profile_means_no_escalation(self):
        findings = _lint(HOT_SOURCE, [AllocHotRule()])
        assert {f.severity.name for f in findings} == {"INFO"}

    def test_callee_of_hot_root_inherits_hotness(self):
        source = '''
            class Engine:
                def on_compute_done(self, items):
                    return self.helper(items)

                def helper(self, items):
                    out = []
                    for item in items:
                        out.append(Record(item))
                    return out
        '''
        hotness = HotnessModel({"Engine.on_compute_done": 42})
        findings = _lint(source, [AllocHotRule()], hotness=hotness)
        assert _ids(findings) == ["PERF-ALLOC-HOT"]
        assert findings[0].severity.name == "WARNING"
        assert "reachable from" in findings[0].message


# ----------------------------------------------------------------------
# load_hot_profile — trace ingestion errors
# ----------------------------------------------------------------------
class TestLoadHotProfile:
    def test_bare_snapshot_counters(self, tmp_path):
        trace = tmp_path / "trace.json"
        trace.write_text(json.dumps(
            {"counters": {"sim.dispatch.Engine.tick": 7, "net.bytes.push": 9}}
        ))
        model = load_hot_profile(str(trace))
        assert model.dispatch_counts == {"Engine.tick": 7}

    def test_trace_v2_perf_section(self, tmp_path):
        trace = tmp_path / "trace.json"
        trace.write_text(json.dumps(
            {"perf": {"counters": {"sim.dispatch.Engine.tick": 3}}}
        ))
        model = load_hot_profile(str(trace))
        assert model.dispatch_counts == {"Engine.tick": 3}

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ProfileError, match="cannot read"):
            load_hot_profile(str(tmp_path / "nope.json"))

    def test_invalid_json_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ProfileError, match="not valid JSON"):
            load_hot_profile(str(bad))

    def test_counterless_payload_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"events": []}))
        with pytest.raises(ProfileError, match="no perf counters"):
            load_hot_profile(str(bad))


# ----------------------------------------------------------------------
# Pack registration, suppression, CLI
# ----------------------------------------------------------------------
class TestPackAndCli:
    def test_perf_pack_registered_but_opt_in(self):
        assert "perf" in RULE_PACKS
        packed = {type(r) for r in rules_for(packs=["perf"])}
        assert packed == {
            AllocHotRule, NumpyCopyRule, PicklePayloadRule,
            AttrLoopRule, LogHotRule, ScanRule,
        }
        # opt-in: the default batch (self-lint gate) must not include it
        assert not packed & {type(r) for r in default_rules()}

    def test_suppression_comment_silences_finding(self):
        findings = lint_source(textwrap.dedent('''
            import multiprocessing

            def f(queue, gradient):
                # repro: allow[PERF-PICKLE-PAYLOAD] queue backend cost, tracked on ROADMAP
                queue.put(("push", gradient))
        '''), module=ZONE, rules=[PicklePayloadRule()])
        assert [f.rule_id for f in findings if not f.suppressed] == []
        assert [f.rule_id for f in findings if f.suppressed] == [
            "PERF-PICKLE-PAYLOAD"
        ]

    def test_cli_profile_escalates_to_gate_failure(self, tmp_path, capsys):
        src = tmp_path / "hot.py"
        src.write_text(textwrap.dedent('''
            class Engine:
                def tick(self, items):
                    out = []
                    for item in items:
                        out.append(Record(item))
                    return out
        '''))
        trace = tmp_path / "trace.json"
        trace.write_text(json.dumps(
            {"perf": {"counters": {"sim.dispatch.Engine.tick": 99}}}
        ))
        # without a profile: info findings pass the warning gate
        assert main(["lint", "--pack", "perf", "--fail-on", "warning",
                     str(src)]) == 0
        capsys.readouterr()
        # with the profile: the same finding escalates and trips the gate
        code = main(["lint", "--pack", "perf", "--fail-on", "warning",
                     "--profile", str(trace), str(src)])
        assert code == 1
        out = capsys.readouterr().out
        assert "warning" in out and "hot path" in out

    def test_cli_missing_profile_is_exit_2(self, tmp_path, capsys):
        src = tmp_path / "ok.py"
        src.write_text("x = 1\n")
        code = main(["lint", "--pack", "perf",
                     "--profile", str(tmp_path / "nope.json"), str(src)])
        assert code == 2
        assert "cannot read profile" in capsys.readouterr().err

    def test_cli_malformed_profile_is_exit_2(self, tmp_path, capsys):
        src = tmp_path / "ok.py"
        src.write_text("x = 1\n")
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2, 3]")
        code = main(["lint", "--pack", "perf",
                     "--profile", str(bad), str(src)])
        assert code == 2
        assert "must be a JSON object" in capsys.readouterr().err
