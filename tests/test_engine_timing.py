"""Timing-level tests of the engine: transfer delays, sharding, pull delays."""

import numpy as np
import pytest

from repro import AspPolicy, ClusterSpec, NaiveWaitingPolicy
from repro.cluster.compute import ComputeTimeModel
from repro.ml.optim import ConstantSchedule, SgdUpdateRule
from repro.netsim.network import LinkModel
from repro.ps.engine import EngineConfig, TrainingEngine
from repro.workloads import tiny_workload


def build_engine(num_workers=2, policy=None, num_shards=None,
                 param_bytes=1e6, link=None, horizon=30.0, seed=0,
                 compute_mean=1.0):
    workload = tiny_workload()
    cluster = ClusterSpec.homogeneous(num_workers)
    dataset = workload.dataset_factory(0)
    partitions = dataset.partition(num_workers, np.random.default_rng(0))
    return TrainingEngine(
        model=workload.model_factory(),
        partitions=partitions,
        eval_batch=dataset.eval_batch(),
        update_rule=SgdUpdateRule(ConstantSchedule(0.2)),
        policy=policy or AspPolicy(),
        cluster=cluster,
        base_compute_model=ComputeTimeModel(
            mean_time_s=compute_mean, jitter_sigma=0.0
        ),
        config=EngineConfig(
            batch_size=8,
            horizon_s=horizon,
            eval_interval_s=5.0,
            param_wire_bytes=param_bytes,
            link=link or LinkModel(bandwidth_bytes_per_s=1e6,
                                   base_latency_s=0.001),
            num_shards=num_shards,
        ),
        seed=seed,
    )


class TestTransferTiming:
    def test_more_shards_faster_pulls_more_iterations(self):
        """A pull of B bytes over k shards serializes B/k per stream, so a
        bandwidth-bound workload completes more iterations with more shards."""
        slow = build_engine(num_shards=1).run()
        fast = build_engine(num_shards=8).run()
        assert fast.total_iterations > slow.total_iterations

    def test_param_size_slows_iterations(self):
        small = build_engine(param_bytes=1e4).run()
        large = build_engine(param_bytes=2e6).run()
        assert small.total_iterations > large.total_iterations

    def test_first_pull_happens_after_link_delay(self):
        engine = build_engine(param_bytes=1e6, num_shards=1)
        result = engine.run()
        first_pull = result.traces.pulls[0]
        # request latency + response serialization (1e6B @ 1e6B/s = 1s)
        assert first_pull.time >= 1.0

    def test_iteration_span_includes_compute_and_transfers(self):
        engine = build_engine(param_bytes=1e6, num_shards=1, compute_mean=2.0,
                              horizon=60.0)
        result = engine.run()
        spans = [w.mean_iteration_time for w in result.worker_stats]
        # span >= compute (2s) + pull response (1s) + push (1s)
        assert all(s >= 3.9 for s in spans)


class TestPullDelayTiming:
    def test_naive_wait_shifts_pull_times(self):
        baseline = build_engine(policy=AspPolicy(), horizon=20.0).run()
        delayed = build_engine(policy=NaiveWaitingPolicy(0.7), horizon=20.0).run()
        assert delayed.traces.pulls[0].time == pytest.approx(
            baseline.traces.pulls[0].time + 0.7, abs=1e-6
        )

    def test_negative_delay_policy_rejected(self):
        class BadPolicy(NaiveWaitingPolicy):
            def __init__(self):
                super().__init__(0.0)

            def pull_delay(self, worker_id):
                return -1.0

        engine = build_engine(policy=BadPolicy(), horizon=5.0)
        with pytest.raises(ValueError):
            engine.run()


class TestDefaultSharding:
    def test_default_shards_equal_workers(self):
        engine = build_engine(num_workers=5)
        assert engine.store.num_shards == 5

    def test_explicit_shards_respected(self):
        engine = build_engine(num_workers=5, num_shards=2)
        assert engine.store.num_shards == 2


class TestCongestionOption:
    def test_serialized_nics_slow_push_heavy_runs(self):
        from repro.workloads import tiny_workload
        from repro.netsim.network import LinkModel
        from repro import ClusterSpec, AspPolicy

        # Big transfers relative to compute so NIC serialization bites.
        workload = tiny_workload().with_overrides(param_wire_bytes=3e5)
        link = LinkModel(bandwidth_bytes_per_s=1e6, base_latency_s=0.001)

        def run(serialize):
            from repro.ps.engine import EngineConfig, TrainingEngine
            import numpy as np

            dataset = workload.dataset_factory(0)
            partitions = dataset.partition(4, np.random.default_rng(0))
            engine = TrainingEngine(
                model=workload.model_factory(),
                partitions=partitions,
                eval_batch=dataset.eval_batch(),
                update_rule=workload.update_rule_factory(),
                policy=AspPolicy(),
                cluster=ClusterSpec.homogeneous(4),
                base_compute_model=workload.base_compute,
                config=EngineConfig(
                    batch_size=16, horizon_s=30.0, eval_interval_s=5.0,
                    param_wire_bytes=3e5, link=link, num_shards=1,
                    serialize_node_transfers=serialize,
                ),
                seed=0,
            )
            return engine.run()

        free = run(False)
        congested = run(True)
        assert congested.total_iterations <= free.total_iterations
