"""Tests for synthetic dataset generators and partitioning."""

import numpy as np
import pytest

from repro.ml import SyntheticImageDataset, SyntheticRatingsDataset
from repro.ml.datasets.base import Partition


class TestSyntheticRatings:
    def make(self, **kwargs):
        defaults = dict(num_users=50, num_items=30, num_ratings=2000, seed=0)
        defaults.update(kwargs)
        return SyntheticRatingsDataset(**defaults)

    def test_ratings_in_star_range(self):
        ds = self.make()
        _, _, ratings = ds.gather(np.arange(ds.num_samples))
        assert np.all(ratings >= 1.0) and np.all(ratings <= 5.0)

    def test_indices_within_bounds(self):
        ds = self.make()
        users, items, _ = ds.gather(np.arange(ds.num_samples))
        assert users.max() < 50 and users.min() >= 0
        assert items.max() < 30 and items.min() >= 0

    def test_eval_batch_held_out(self):
        ds = self.make(eval_fraction=0.2)
        eval_users, _, _ = ds.eval_batch()
        assert len(eval_users) == 400
        assert ds.num_samples == 1600

    def test_reproducible(self):
        a = self.make(seed=7)
        b = self.make(seed=7)
        ua, _, ra = a.gather(np.arange(10))
        ub, _, rb = b.gather(np.arange(10))
        np.testing.assert_array_equal(ua, ub)
        np.testing.assert_array_equal(ra, rb)

    def test_different_seeds_differ(self):
        a = self.make(seed=1)
        b = self.make(seed=2)
        _, _, ra = a.gather(np.arange(50))
        _, _, rb = b.gather(np.arange(50))
        assert not np.allclose(ra, rb)

    def test_popularity_skew(self):
        ds = self.make(num_ratings=20_000)
        _, items, _ = ds.gather(np.arange(ds.num_samples))
        counts = np.bincount(items, minlength=30)
        # Zipf-ish: most popular item much more frequent than least popular.
        assert counts.max() > 3 * max(counts.min(), 1)

    def test_low_rank_structure_learnable(self):
        # Residual after subtracting global mean should be predictable:
        # correlation between two disjoint halves of a user's ratings exists.
        ds = self.make(num_ratings=20_000, noise_std=0.1)
        users, items, ratings = ds.gather(np.arange(ds.num_samples))
        assert ratings.std() > 0.3  # structure + noise, not constant

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            self.make(num_ratings=5)
        with pytest.raises(ValueError):
            self.make(eval_fraction=1.5)


class TestSyntheticImages:
    def make(self, **kwargs):
        defaults = dict(
            num_classes=4, feature_dim=8, num_samples=1000, seed=0
        )
        defaults.update(kwargs)
        return SyntheticImageDataset(**defaults)

    def test_shapes(self):
        ds = self.make()
        X, y = ds.gather(np.arange(10))
        assert X.shape == (10, 8)
        assert y.shape == (10,)

    def test_labels_in_range(self):
        ds = self.make()
        _, y = ds.gather(np.arange(ds.num_samples))
        assert y.min() >= 0 and y.max() < 4

    def test_features_standardized(self):
        ds = self.make(num_samples=5000)
        X, _ = ds.gather(np.arange(ds.num_samples))
        assert abs(X.mean()) < 0.1
        assert abs(X.std() - 1.0) < 0.15

    def test_classes_separable_by_separation(self):
        # Higher separation -> class means further apart in feature space.
        def spread(sep):
            ds = self.make(num_samples=4000, class_separation=sep, warp=False)
            X, y = ds.gather(np.arange(ds.num_samples))
            means = np.stack([X[y == c].mean(axis=0) for c in range(4)])
            return np.linalg.norm(means[0] - means[1])

        assert spread(5.0) > spread(0.5)

    def test_eval_batch_held_out(self):
        ds = self.make(eval_fraction=0.25)
        X_eval, _ = ds.eval_batch()
        assert len(X_eval) == 250
        assert ds.num_samples == 750

    def test_reproducible(self):
        a = self.make(seed=9)
        b = self.make(seed=9)
        Xa, _ = a.gather(np.arange(5))
        Xb, _ = b.gather(np.arange(5))
        np.testing.assert_allclose(Xa, Xb)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            self.make(num_classes=1)
        with pytest.raises(ValueError):
            self.make(num_samples=3)


class TestPartitioning:
    def test_partitions_cover_all_samples_disjointly(self):
        ds = SyntheticImageDataset(num_classes=3, feature_dim=4, num_samples=500, seed=0)
        rng = np.random.default_rng(0)
        parts = ds.partition(7, rng)
        all_indices = np.concatenate([p.indices for p in parts])
        assert len(all_indices) == ds.num_samples
        assert len(np.unique(all_indices)) == ds.num_samples

    def test_partitions_roughly_equal(self):
        ds = SyntheticImageDataset(num_classes=3, feature_dim=4, num_samples=500, seed=0)
        parts = ds.partition(7, np.random.default_rng(0))
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_partition_reproducible_with_seeded_rng(self):
        ds = SyntheticImageDataset(num_classes=3, feature_dim=4, num_samples=500, seed=0)
        a = ds.partition(4, np.random.default_rng(5))
        b = ds.partition(4, np.random.default_rng(5))
        for pa, pb in zip(a, b):
            np.testing.assert_array_equal(pa.indices, pb.indices)

    def test_sample_batch_draws_from_own_shard(self):
        ds = SyntheticImageDataset(num_classes=3, feature_dim=4, num_samples=200, seed=0)
        parts = ds.partition(4, np.random.default_rng(0))
        rng = np.random.default_rng(1)
        own = set(parts[0].indices.tolist())
        for _ in range(20):
            chosen = rng.choice(parts[0].indices, size=10, replace=True)
            assert set(chosen.tolist()) <= own

    def test_too_many_workers_rejected(self):
        ds = SyntheticImageDataset(num_classes=3, feature_dim=4, num_samples=100, seed=0)
        with pytest.raises(ValueError):
            ds.partition(200, np.random.default_rng(0))

    def test_batch_size_validated(self):
        ds = SyntheticImageDataset(num_classes=3, feature_dim=4, num_samples=100, seed=0)
        part = ds.partition(2, np.random.default_rng(0))[0]
        with pytest.raises(ValueError):
            part.sample_batch(np.random.default_rng(0), 0)

    def test_empty_partition_rejected(self):
        ds = SyntheticImageDataset(num_classes=3, feature_dim=4, num_samples=100, seed=0)
        with pytest.raises(ValueError):
            Partition(ds, np.array([], dtype=np.int64))
