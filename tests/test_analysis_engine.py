"""Unit tests for the lint engine: findings, suppression, reporters, CLI."""

import json
import os
import textwrap

import pytest

from repro.analysis import (
    DEFAULT_RULE_CLASSES,
    Finding,
    LintEngine,
    Severity,
    lint_source,
    module_from_source,
    parse_json,
    render_json,
    render_text,
    run_lint,
)
from repro.analysis.engine import _dotted_module_name, iter_python_files
from repro.cli import main as cli_main

BAD_DETERMINISM = textwrap.dedent(
    """\
    import time

    def stamp():
        return time.time()
    """
)


def test_finding_round_trips_through_dict():
    finding = Finding(
        rule_id="DET-WALLCLOCK",
        severity=Severity.ERROR,
        path="src/repro/x.py",
        line=7,
        message="no clocks",
        suppressed=True,
    )
    rebuilt = Finding.from_dict(finding.to_dict())
    assert rebuilt == finding
    assert rebuilt.suppressed is True
    assert rebuilt.location == "src/repro/x.py:7"


def test_finding_validates_inputs():
    with pytest.raises(ValueError):
        Finding(rule_id="", severity=Severity.ERROR, path="x", line=1, message="m")
    with pytest.raises(ValueError):
        Finding(rule_id="R", severity=Severity.ERROR, path="x", line=0, message="m")


def test_bad_fixture_fires_in_zone_only():
    in_zone = lint_source(BAD_DETERMINISM, module="repro.events.fixture")
    assert [f.rule_id for f in in_zone] == ["DET-WALLCLOCK"]
    out_of_zone = lint_source(BAD_DETERMINISM, module="repro.runtime.fixture")
    assert out_of_zone == []


def test_same_line_suppression_marks_finding():
    source = BAD_DETERMINISM.replace(
        "return time.time()",
        "return time.time()  # repro: allow[DET-WALLCLOCK] fixture",
    )
    findings = lint_source(source, module="repro.events.fixture")
    assert len(findings) == 1
    assert findings[0].suppressed is True


def test_preceding_comment_line_suppression():
    source = textwrap.dedent(
        """\
        import time

        def stamp():
            # repro: allow[DET-WALLCLOCK] fixture justification
            return time.time()
        """
    )
    findings = lint_source(source, module="repro.events.fixture")
    assert len(findings) == 1 and findings[0].suppressed


def test_wildcard_suppression_waives_any_rule():
    source = BAD_DETERMINISM.replace(
        "return time.time()", "return time.time()  # repro: allow[*]"
    )
    findings = lint_source(source, module="repro.events.fixture")
    assert findings[0].suppressed


def test_suppression_for_other_rule_does_not_apply():
    source = BAD_DETERMINISM.replace(
        "return time.time()",
        "return time.time()  # repro: allow[DET-GLOBALRNG]",
    )
    findings = lint_source(source, module="repro.events.fixture")
    assert len(findings) == 1
    assert findings[0].suppressed is False


def test_rule_ids_are_unique_and_named():
    ids = [cls.rule_id for cls in DEFAULT_RULE_CLASSES]
    assert len(ids) == len(set(ids))
    assert all(ids)
    # Engine enforces the same invariant at construction time.
    rules = [cls() for cls in DEFAULT_RULE_CLASSES]
    with pytest.raises(ValueError):
        LintEngine(rules + [DEFAULT_RULE_CLASSES[0]()])


def test_json_reporter_round_trips():
    findings = lint_source(BAD_DETERMINISM, module="repro.events.fixture")
    rebuilt = parse_json(render_json(findings))
    assert rebuilt == findings
    payload = json.loads(render_json(findings))
    assert payload["counts"]["unsuppressed"] == 1
    assert payload["counts"]["by_rule"] == {"DET-WALLCLOCK": 1}


def test_text_reporter_summary_and_suppressed_visibility():
    source = BAD_DETERMINISM.replace(
        "return time.time()", "return time.time()  # repro: allow[DET-WALLCLOCK]"
    )
    findings = lint_source(source, module="repro.events.fixture")
    hidden = render_text(findings)
    assert "clean: 0 findings (1 suppressed)" in hidden
    assert "DET-WALLCLOCK" not in hidden.splitlines()[0] or len(
        hidden.splitlines()
    ) == 1
    shown = render_text(findings, show_suppressed=True)
    assert "(suppressed)" in shown


def test_dotted_module_name_derivation():
    import repro.ps.engine as engine_module

    assert _dotted_module_name(engine_module.__file__) == "repro.ps.engine"
    import repro.ps as ps_package

    assert _dotted_module_name(ps_package.__file__) == "repro.ps"


def test_iter_python_files_rejects_missing_paths(tmp_path):
    with pytest.raises(FileNotFoundError):
        list(iter_python_files([str(tmp_path / "nope")]))


def test_run_lint_over_files_on_disk(tmp_path):
    target = tmp_path / "src" / "repro" / "events"
    target.mkdir(parents=True)
    # __init__ markers so the module name resolves into the zone
    (tmp_path / "src" / "repro" / "__init__.py").write_text("")
    (target / "__init__.py").write_text("")
    (target / "bad.py").write_text(BAD_DETERMINISM)
    findings = run_lint([str(tmp_path / "src")])
    assert [f.rule_id for f in findings] == ["DET-WALLCLOCK"]
    assert findings[0].path.endswith(os.path.join("events", "bad.py"))


def test_cli_lint_exit_codes_and_json(tmp_path, capsys):
    bad = tmp_path / "repro_zone"
    bad.mkdir()
    # Not a repro.* module -> zone rules silent; use a repo-wide rule.
    (bad / "mutable.py").write_text("def f(x=[]):\n    return x\n")
    assert cli_main(["lint", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "DET-MUTABLE-DEFAULT" in out

    assert cli_main(["lint", "--format", "json", str(bad)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"]["unsuppressed"] == 1

    clean = tmp_path / "clean"
    clean.mkdir()
    (clean / "ok.py").write_text("def f(x=None):\n    return x\n")
    assert cli_main(["lint", str(clean)]) == 0


def test_syntax_error_becomes_parse_error_finding(tmp_path):
    (tmp_path / "broken.py").write_text("def broken(:\n")
    (tmp_path / "fine.py").write_text("def f(x=None):\n    return x\n")
    findings = run_lint([str(tmp_path)])
    assert [f.rule_id for f in findings] == ["PARSE-ERROR"]
    assert findings[0].path.endswith("broken.py")
    assert findings[0].line == 1
    assert "does not parse" in findings[0].message


def test_cli_lint_missing_path_errors_cleanly(tmp_path, capsys):
    assert cli_main(["lint", str(tmp_path / "nope")]) == 2
    err = capsys.readouterr().err
    assert "repro lint: error:" in err
    assert "nope" in err


def test_module_from_source_records_suppression_map():
    module = module_from_source(
        "x = 1  # repro: allow[A, B]\n", module="m"
    )
    assert module.is_suppressed("A", 1)
    assert module.is_suppressed("B", 1)
    assert not module.is_suppressed("C", 1)
