"""Tests for the Chrome trace-event (Perfetto) exporter.

Covers the JSON schema (phases, µs timestamps, pid/tid layout, args),
flow-event pairing, and a golden-file round trip on a seeded 3-worker
run.  Regenerate the golden file after an intentional format change
with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_obs_perfetto.py
"""

import io
import json
import os
from pathlib import Path

import pytest

from repro import ClusterSpec, Simulator, SpecSyncPolicy
from repro.obs import (
    TRACE_FORMAT_VERSION,
    FunctionClock,
    TraceCollector,
    Tracer,
    VirtualClock,
    collecting,
    load_trace,
    render_summary,
    summarize_trace,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.workloads import tiny_workload

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_trace.json"

#: pid per clock domain, mirrored from the exporter's contract.
VIRTUAL_PID, WALL_PID = 1, 2


def _seeded_run_collector() -> TraceCollector:
    collector = TraceCollector()
    collector.metadata["workload"] = "tiny"
    collector.metadata["seed"] = 3
    with collecting(collector):
        workload = tiny_workload()
        cluster = ClusterSpec.homogeneous(3)
        workload.run(
            cluster, SpecSyncPolicy.adaptive(), seed=3, horizon_s=30.0
        )
    return collector


@pytest.fixture(scope="module")
def run_trace() -> dict:
    return to_chrome_trace(_seeded_run_collector())


class TestSchema:
    def test_top_level_layout(self, run_trace):
        assert set(run_trace) == {
            "traceEvents", "displayTimeUnit", "otherData", "metrics", "perf"
        }
        assert run_trace["displayTimeUnit"] == "ms"
        assert run_trace["otherData"]["format_version"] == TRACE_FORMAT_VERSION
        assert run_trace["otherData"]["workload"] == "tiny"
        assert set(run_trace["metrics"]) == {
            "counters", "gauges", "histograms"
        }
        assert set(run_trace["perf"]) == {
            "schema_version", "phases", "counters", "series", "reports"
        }

    def test_every_event_is_well_formed(self, run_trace):
        for event in run_trace["traceEvents"]:
            assert event["ph"] in {"X", "i", "s", "f", "M"}
            assert isinstance(event["name"], str)
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            if event["ph"] == "M":
                assert event["name"] in {"process_name", "thread_name"}
                assert "name" in event["args"]
            else:
                assert event["ts"] >= 0.0
                assert "cat" in event
            if event["ph"] == "X":
                assert event["dur"] >= 0.0
            if event["ph"] == "i":
                assert event["s"] == "t"
            if event["ph"] == "f":
                assert event["bp"] == "e"

    def test_one_track_per_worker_plus_named_tracks(self, run_trace):
        names = {
            event["args"]["name"]: (event["pid"], event["tid"])
            for event in run_trace["traceEvents"]
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        assert {"worker-0", "worker-1", "worker-2", "server",
                "scheduler"} <= set(names)
        # Workers first, in numeric order, all on the virtual-time process.
        assert [names[f"worker-{i}"] for i in range(3)] == [
            (VIRTUAL_PID, 1), (VIRTUAL_PID, 2), (VIRTUAL_PID, 3)
        ]

    def test_span_timestamps_are_virtual_microseconds(self, run_trace):
        spans = [e for e in run_trace["traceEvents"] if e["ph"] == "X"]
        assert spans
        # The tiny run lasts under a virtual minute: 60e6 µs.
        assert all(0.0 <= e["ts"] <= 60e6 for e in spans)

    def test_args_survive_export(self, run_trace):
        decisions = [
            e for e in run_trace["traceEvents"]
            if e["ph"] == "i" and e["name"] == "resync_decision"
        ]
        assert decisions
        for event in decisions:
            assert {"worker", "iteration", "peer_pushes",
                    "threshold"} <= set(event["args"])


class TestFlowPairing:
    def test_every_flow_id_pairs_exactly_once(self, run_trace):
        starts = [e for e in run_trace["traceEvents"] if e["ph"] == "s"]
        finishes = [e for e in run_trace["traceEvents"] if e["ph"] == "f"]
        assert starts, "the seeded run must produce abort flow arrows"
        assert sorted(e["id"] for e in starts) == sorted(
            e["id"] for e in finishes
        )
        assert len({e["id"] for e in starts}) == len(starts)

    def test_abort_arrows_point_at_the_aborted_worker(self, run_trace):
        finishes = {
            e["id"]: e for e in run_trace["traceEvents"] if e["ph"] == "f"
        }
        worker_tids = {
            event["tid"]
            for event in run_trace["traceEvents"]
            if event["ph"] == "M" and event["name"] == "thread_name"
            and event["args"]["name"].startswith("worker-")
        }
        for event in run_trace["traceEvents"]:
            if event["ph"] == "s":
                finish = finishes[event["id"]]
                assert event["cat"] == finish["cat"] == "abort"
                assert finish["tid"] in worker_tids
                assert finish["ts"] >= event["ts"]

    def test_unclosed_origins_are_not_exported(self):
        collector = TraceCollector()
        tracer = Tracer(collector, VirtualClock(Simulator()))
        tracer.flow_begin(("resync", 0, 1), "worker-1", "abort", ts=1.0)
        trace = to_chrome_trace(collector)
        assert all(e["ph"] not in {"s", "f"} for e in trace["traceEvents"])


class TestDomains:
    def test_wall_epoch_is_normalized_virtual_is_absolute(self):
        collector = TraceCollector()
        sim = Simulator()
        virtual = Tracer(collector, VirtualClock(sim))
        ticks = iter([1e9 + 5.0, 1e9 + 6.0])
        wall = Tracer(collector, FunctionClock(lambda: next(ticks)))
        virtual.span("worker-0", "compute", start=2.0, end=3.0)
        with wall.measure("rt.run", "run"):
            pass
        events = {
            (e["pid"], e["name"]): e
            for e in to_chrome_trace(collector)["traceEvents"]
            if e["ph"] == "X"
        }
        # Virtual timestamps stay absolute (2 s -> 2e6 µs); the wall span
        # is rebased to its own earliest record.
        assert events[(VIRTUAL_PID, "compute")]["ts"] == pytest.approx(2e6)
        assert events[(WALL_PID, "run")]["ts"] == pytest.approx(0.0)
        assert events[(WALL_PID, "run")]["dur"] == pytest.approx(1e6)


class TestGoldenFile:
    def test_seeded_export_matches_golden(self):
        buffer = io.StringIO()
        write_chrome_trace(_seeded_run_collector(), buffer)
        rendered = buffer.getvalue()
        if os.environ.get("REPRO_REGEN_GOLDEN"):
            GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
            GOLDEN_PATH.write_text(rendered, encoding="utf-8")
        golden = GOLDEN_PATH.read_text(encoding="utf-8")
        assert rendered == golden, (
            "export drifted from tests/data/golden_trace.json; if the "
            "format change is intentional, regenerate with "
            "REPRO_REGEN_GOLDEN=1"
        )

    def test_golden_round_trips_through_the_summarizer(self):
        with GOLDEN_PATH.open(encoding="utf-8") as handle:
            trace = load_trace(handle)
        summary = summarize_trace(trace)
        assert summary.total_events == len(trace["traceEvents"])
        assert {"pull", "compute", "push", "iteration"} <= set(summary.spans)
        assert summary.instants["resync_decision"] >= 1
        assert summary.abort_flow_pairs >= 1
        assert summary.unpaired_flows == 0
        text = render_summary(summary)
        assert "abort causality" in text
        assert "spans" in text
