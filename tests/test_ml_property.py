"""Property-based tests over the ML substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml import (
    LinearRegressionModel,
    MLPModel,
    ParamSet,
    SoftmaxRegressionModel,
)


class TestGradientProperties:
    @settings(deadline=None, max_examples=10)
    @given(
        input_dim=st.integers(min_value=2, max_value=8),
        num_classes=st.integers(min_value=2, max_value=5),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_softmax_gradients_correct_for_any_shape(
        self, input_dim, num_classes, seed
    ):
        model = SoftmaxRegressionModel(input_dim, num_classes, reg=1e-3)
        rng = np.random.default_rng(seed)
        params = model.init_params(rng)
        X = rng.normal(size=(12, input_dim))
        y = rng.integers(0, num_classes, size=12)
        assert model.check_gradient(params, (X, y), sample_size=12) < 1e-4

    @settings(deadline=None, max_examples=8)
    @given(
        hidden=st.integers(min_value=2, max_value=10),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_mlp_gradients_correct_for_any_width(self, hidden, seed):
        model = MLPModel(4, [hidden], 3, reg=0.0)
        rng = np.random.default_rng(seed)
        params = model.init_params(rng)
        X = rng.normal(size=(10, 4))
        y = rng.integers(0, 3, size=10)
        assert model.check_gradient(params, (X, y), sample_size=20) < 1e-4

    @settings(deadline=None, max_examples=10)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_loss_is_deterministic_pure_function(self, seed):
        model = LinearRegressionModel(3)
        rng = np.random.default_rng(seed)
        params = model.init_params(rng)
        X = rng.normal(size=(8, 3))
        y = rng.normal(size=8)
        assert model.loss(params, (X, y)) == model.loss(params, (X, y))
        _, g1 = model.loss_and_grad(params, (X, y))
        _, g2 = model.loss_and_grad(params, (X, y))
        assert g1.allclose(g2)

    @settings(deadline=None, max_examples=10)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_gradient_descends_loss_locally(self, seed):
        """One small step against the gradient must not increase the loss."""
        model = SoftmaxRegressionModel(4, 3, reg=1e-4)
        rng = np.random.default_rng(seed)
        params = model.init_params(rng)
        X = rng.normal(size=(20, 4))
        y = rng.integers(0, 3, size=20)
        loss, grad = model.loss_and_grad(params, (X, y))
        stepped = params.copy()
        stepped.add_scaled(grad, -1e-4)
        assert model.loss(stepped, (X, y)) <= loss + 1e-12


class TestParamSetProperties:
    @settings(deadline=None, max_examples=20)
    @given(
        alpha=st.floats(min_value=-10, max_value=10, allow_nan=False),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_add_scaled_matches_vector_arithmetic(self, alpha, seed):
        rng = np.random.default_rng(seed)
        a = ParamSet({"x": rng.normal(size=(3, 2)), "y": rng.normal(size=4)})
        b = ParamSet({"x": rng.normal(size=(3, 2)), "y": rng.normal(size=4)})
        expected = a.to_vector() + alpha * b.to_vector()
        a.add_scaled(b, alpha)
        np.testing.assert_allclose(a.to_vector(), expected)

    @settings(deadline=None, max_examples=20)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_norm_matches_vector_norm(self, seed):
        rng = np.random.default_rng(seed)
        params = ParamSet({"x": rng.normal(size=5), "y": rng.normal(size=(2, 2))})
        assert params.norm() == pytest.approx(
            float(np.linalg.norm(params.to_vector()))
        )

    @settings(deadline=None, max_examples=20)
    @given(
        max_norm=st.floats(min_value=0.01, max_value=100, allow_nan=False),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_clip_never_exceeds_max_norm(self, max_norm, seed):
        rng = np.random.default_rng(seed)
        params = ParamSet({"x": rng.normal(size=10) * 50})
        clipped = params.clip_by_global_norm(max_norm)
        assert clipped.norm() <= max_norm * (1 + 1e-9)
