"""Tests for scripted slowdown scenarios and failure injection."""

import numpy as np
import pytest

from repro import AspPolicy, ClusterSpec
from repro.cluster.compute import ComputeTimeModel
from repro.cluster.scenarios import (
    ScenarioComputeModel,
    SlowdownWindow,
    build_scenario_models,
)
from repro.ps.engine import EngineConfig, TrainingEngine
from repro.workloads import tiny_workload


class TestSlowdownWindow:
    def test_active_interval_half_open(self):
        window = SlowdownWindow(start_s=10.0, end_s=20.0, factor=3.0)
        assert not window.active_at(9.99)
        assert window.active_at(10.0)
        assert window.active_at(19.99)
        assert not window.active_at(20.0)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            SlowdownWindow(start_s=5.0, end_s=5.0, factor=2.0)
        with pytest.raises(ValueError):
            SlowdownWindow(start_s=0.0, end_s=1.0, factor=0.0)


class TestScenarioComputeModel:
    def test_stretches_inside_window_only(self):
        base = ComputeTimeModel(mean_time_s=2.0, jitter_sigma=0.0)
        model = ScenarioComputeModel(
            base, [SlowdownWindow(10.0, 20.0, factor=5.0)]
        )
        rng = np.random.default_rng(0)
        assert model.sample_at(rng, 5.0) == pytest.approx(2.0)
        assert model.sample_at(rng, 15.0) == pytest.approx(10.0)
        assert model.sample_at(rng, 25.0) == pytest.approx(2.0)

    def test_overlapping_windows_compound(self):
        base = ComputeTimeModel(mean_time_s=1.0, jitter_sigma=0.0)
        model = ScenarioComputeModel(
            base,
            [SlowdownWindow(0.0, 10.0, 2.0), SlowdownWindow(5.0, 15.0, 3.0)],
        )
        rng = np.random.default_rng(0)
        assert model.sample_at(rng, 7.0) == pytest.approx(6.0)

    def test_scaled_keeps_windows(self):
        base = ComputeTimeModel(mean_time_s=4.0, jitter_sigma=0.0)
        model = ScenarioComputeModel(base, [SlowdownWindow(0.0, 1.0, 2.0)])
        fast = model.scaled(2.0)
        rng = np.random.default_rng(0)
        assert fast.sample_at(rng, 0.5) == pytest.approx(4.0)  # 4/2*2
        assert len(fast.windows) == 1


class TestBuildScenarioModels:
    def test_targets_only_listed_workers(self):
        cluster = ClusterSpec.homogeneous(4)
        base = ComputeTimeModel(mean_time_s=1.0, jitter_sigma=0.0)
        models = build_scenario_models(
            cluster, base, {2: [SlowdownWindow(0.0, 100.0, 10.0)]}
        )
        rng = np.random.default_rng(0)
        assert models[0].sample_at(rng, 1.0) == pytest.approx(1.0)
        assert models[2].sample_at(rng, 1.0) == pytest.approx(10.0)

    def test_unknown_worker_rejected(self):
        cluster = ClusterSpec.homogeneous(2)
        base = ComputeTimeModel(mean_time_s=1.0)
        with pytest.raises(ValueError):
            build_scenario_models(cluster, base, {5: [SlowdownWindow(0, 1, 2)]})


class TestFailureInjectionEndToEnd:
    def _run_with_scenario(self, events):
        workload = tiny_workload()
        cluster = ClusterSpec.homogeneous(4)
        dataset = workload.dataset_factory(0)
        rng = np.random.default_rng(0)
        partitions = dataset.partition(4, rng)
        models = build_scenario_models(cluster, workload.base_compute, events)
        engine = TrainingEngine(
            model=workload.model_factory(),
            partitions=partitions,
            eval_batch=dataset.eval_batch(),
            update_rule=workload.update_rule_factory(),
            policy=AspPolicy(),
            cluster=cluster,
            base_compute_model=workload.base_compute,
            config=EngineConfig(
                batch_size=16, horizon_s=60.0, eval_interval_s=5.0,
                param_wire_bytes=1e5,
            ),
            seed=0,
            compute_models=models,
        )
        return engine.run()

    def test_slowed_worker_completes_fewer_iterations(self):
        slowed = self._run_with_scenario(
            {1: [SlowdownWindow(0.0, 60.0, factor=6.0)]}
        )
        iterations = {w.worker_id: w.iterations for w in slowed.worker_stats}
        others = [iterations[i] for i in (0, 2, 3)]
        assert iterations[1] < min(others) * 0.5

    def test_transient_window_recovers(self):
        result = self._run_with_scenario(
            {1: [SlowdownWindow(0.0, 15.0, factor=8.0)]}
        )
        iterations = {w.worker_id: w.iterations for w in result.worker_stats}
        # After the window ends, worker 1 runs at full speed again: its
        # deficit is bounded by the window span (~15 lost 1s-iterations)
        # plus the straddling 8x iteration.
        assert iterations[1] >= iterations[0] - 25
        assert iterations[1] > iterations[0] * 0.5

    def test_compute_model_count_validated(self):
        workload = tiny_workload()
        cluster = ClusterSpec.homogeneous(3)
        dataset = workload.dataset_factory(0)
        partitions = dataset.partition(3, np.random.default_rng(0))
        with pytest.raises(ValueError):
            TrainingEngine(
                model=workload.model_factory(),
                partitions=partitions,
                eval_batch=dataset.eval_batch(),
                update_rule=workload.update_rule_factory(),
                policy=AspPolicy(),
                cluster=cluster,
                base_compute_model=workload.base_compute,
                config=EngineConfig(
                    batch_size=16, horizon_s=10.0, eval_interval_s=5.0,
                    param_wire_bytes=1e5,
                ),
                compute_models=[workload.base_compute],  # wrong count
            )
