"""Tests for the observability core: clocks, metrics, tracer, flows,
process-wide enablement, and coexistence with the dynamic sanitizers on
the simulator's multi-tap bus."""

import pytest

from repro import ClusterSpec, Simulator, SpecSyncPolicy
from repro.analysis.dynamic.replay import record_event_stream
from repro.obs import (
    NULL_TRACER,
    FlowRecord,
    FunctionClock,
    InstantRecord,
    MetricsRegistry,
    SpanRecord,
    TraceCollector,
    VirtualClock,
    collecting,
    current_collector,
    disable,
    enable,
    tracer_for,
)
from repro.obs.clock import VIRTUAL, WALL
from repro.workloads import tiny_workload


@pytest.fixture(autouse=True)
def _no_leaked_collector():
    yield
    disable()
    assert current_collector() is None


def run_tiny(seed=3, horizon=60.0, workers=3):
    workload = tiny_workload()
    cluster = ClusterSpec.homogeneous(workers)
    return workload.run(
        cluster, SpecSyncPolicy.adaptive(), seed=seed, horizon_s=horizon
    )


class TestClocks:
    def test_virtual_clock_tracks_simulator(self):
        sim = Simulator()
        clock = VirtualClock(sim)
        assert clock.domain == VIRTUAL
        seen = []
        sim.schedule(4.5, lambda: seen.append(clock.now()))
        sim.run()
        assert seen == [4.5]

    def test_function_clock_wraps_injected_source(self):
        ticks = iter([1.0, 2.5])
        clock = FunctionClock(lambda: next(ticks))
        assert clock.domain == WALL
        assert clock.now() == 1.0
        assert clock.now() == 2.5


class TestMetrics:
    def test_counter_accumulates_and_rejects_negative(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.counter("x").inc(2.5)
        assert registry.counter("x").value == 3.5
        with pytest.raises(ValueError):
            registry.counter("x").inc(-1)

    def test_histogram_aggregates(self):
        registry = MetricsRegistry()
        for value in (0.1, 0.2, 0.3):
            registry.histogram("h").observe(value)
        snap = registry.histogram("h").snapshot()
        assert snap["count"] == 3
        assert snap["min"] == 0.1
        assert snap["max"] == 0.3
        assert snap["mean"] == pytest.approx(0.2)

    def test_snapshot_is_sorted_and_render_text_mentions_all(self):
        registry = MetricsRegistry()
        registry.counter("z.last").inc()
        registry.counter("a.first").inc()
        registry.histogram("m.mid").observe(1.0)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a.first", "z.last"]
        text = registry.render_text()
        assert "a.first" in text and "m.mid" in text


class TestTracer:
    def test_span_instant_and_metrics_land_in_collector(self):
        collector = TraceCollector()
        sim = Simulator()
        from repro.obs import Tracer

        tracer = Tracer(collector, VirtualClock(sim))
        tracer.span("worker-0", "compute", start=1.0, end=2.0)
        tracer.instant("server", "push_applied", ts=2.0)
        tracer.count("pushes")
        tracer.observe("staleness", 3.0)
        kinds = [type(r) for r in collector.records]
        assert kinds == [SpanRecord, InstantRecord]
        assert collector.records[0].domain == VIRTUAL
        assert collector.metrics.counter("pushes").value == 1

    def test_measure_scopes_a_span(self):
        collector = TraceCollector()
        ticks = iter([10.0, 11.5])
        from repro.obs import Tracer

        tracer = Tracer(collector, FunctionClock(lambda: next(ticks)))
        with tracer.measure("rt.run", "run"):
            pass
        (span,) = collector.records
        assert (span.start, span.end) == (10.0, 11.5)
        assert span.domain == WALL

    def test_flow_lifecycle_close_and_discard(self):
        collector = TraceCollector()
        sim = Simulator()
        from repro.obs import Tracer

        tracer = Tracer(collector, VirtualClock(sim))
        key = ("resync", 0, 5)
        tracer.flow_begin(key, "worker-1", "abort", ts=1.0)
        tracer.flow_begin(key, "worker-2", "abort", ts=1.5)
        assert collector.pending_flow_count == 2
        assert tracer.flow_end(key, "worker-0", ts=2.0) == 2
        assert collector.pending_flow_count == 0
        flows = [r for r in collector.records if isinstance(r, FlowRecord)]
        assert {f.src_track for f in flows} == {"worker-1", "worker-2"}
        assert all(f.dst_track == "worker-0" for f in flows)

        # Discarded origins never export.
        tracer.flow_begin(key, "worker-1", "abort", ts=3.0)
        tracer.flow_discard(key)
        assert tracer.flow_end(key, "worker-0", ts=4.0) == 0

    def test_null_tracer_is_inert(self):
        before = current_collector()
        NULL_TRACER.span("t", "n", start=0.0)
        NULL_TRACER.instant("t", "n")
        with NULL_TRACER.measure("t", "n"):
            pass
        NULL_TRACER.flow_begin(("k",), "t", "n")
        assert NULL_TRACER.flow_end(("k",), "t") == 0
        NULL_TRACER.count("c")
        NULL_TRACER.observe("h", 1.0)
        assert not NULL_TRACER.enabled
        assert current_collector() is before


class TestEnablement:
    def test_tracer_for_returns_null_when_disabled(self):
        sim = Simulator()
        assert tracer_for(VirtualClock(sim)) is NULL_TRACER

    def test_collecting_enables_then_disables(self):
        sim = Simulator()
        with collecting() as collector:
            assert current_collector() is collector
            tracer = tracer_for(VirtualClock(sim))
            assert tracer.enabled
            assert tracer.collector is collector
        assert current_collector() is None
        assert tracer_for(VirtualClock(sim)) is NULL_TRACER

    def test_double_enable_raises(self):
        enable(TraceCollector())
        with pytest.raises(RuntimeError):
            enable(TraceCollector())

    def test_disable_is_idempotent(self):
        disable()
        disable()

    def test_collecting_counts_simulator_events(self):
        with collecting() as collector:
            sim = Simulator()
            for delay in (1.0, 2.0, 3.0):
                sim.schedule(delay, lambda: None)
            sim.run()
        assert collector.metrics.counter("sim.events_fired").value == 3


class TestInstrumentedRun:
    def test_seeded_run_produces_spans_decisions_and_flows(self):
        with collecting() as collector:
            result = run_tiny()
        assert result.total_aborts > 0
        assert collector.pending_flow_count == 0

        spans = {r.name for r in collector.records if isinstance(r, SpanRecord)}
        assert {"pull", "compute", "push", "iteration"} <= spans
        instants = {
            r.name for r in collector.records if isinstance(r, InstantRecord)
        }
        assert {"notify", "resync_decision", "push_applied"} <= instants
        flows = [r for r in collector.records if isinstance(r, FlowRecord)]
        assert flows and all(f.cat == "abort" for f in flows)

        counters = collector.metrics.snapshot()["counters"]
        assert counters["engine.aborts"] == result.total_aborts
        assert counters["scheduler.resyncs_sent"] >= result.total_aborts
        assert counters["sim.events_fired"] > 0
        assert any(name.startswith("net.bytes.") for name in counters)

    def test_disabled_run_collects_nothing_and_matches_enabled_run(self):
        baseline = run_tiny()
        with collecting() as collector:
            traced = run_tiny()
        # Observability must not perturb the simulation.
        assert traced.total_iterations == baseline.total_iterations
        assert traced.total_aborts == baseline.total_aborts
        assert traced.final_loss == baseline.final_loss
        assert collector.records

    def test_tracer_coexists_with_replay_sanitizer_tap(self):
        # Both the replay checker and the tracer tap the simulator: the
        # multi-tap bus must feed both without either seeing a partial
        # stream.
        with record_event_stream() as fingerprints:
            with collecting() as collector:
                run_tiny(horizon=20.0)
        assert Simulator._taps == ()
        assert len(fingerprints) > 0
        assert (
            collector.metrics.counter("sim.events_fired").value
            == len(fingerprints)
        )
