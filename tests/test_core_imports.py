"""Public-API surface tests: everything README documents must import."""

import importlib

import pytest

import repro


class TestTopLevelApi:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.core.scheduler",
            "repro.core.specsync",
            "repro.core.tuning",
            "repro.core.hyperparams",
            "repro.cluster",
            "repro.events",
            "repro.experiments",
            "repro.experiments.ablations",
            "repro.metrics",
            "repro.ml",
            "repro.netsim",
            "repro.ps",
            "repro.runtime",
            "repro.sync",
            "repro.utils",
            "repro.workloads",
        ],
    )
    def test_submodules_import(self, module):
        importlib.import_module(module)

    def test_subpackage_all_exports_resolve(self):
        for module_name in (
            "repro.core", "repro.cluster", "repro.events", "repro.metrics",
            "repro.ml", "repro.netsim", "repro.ps", "repro.sync",
            "repro.utils", "repro.workloads", "repro.runtime",
            "repro.experiments",
        ):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_readme_quickstart_symbols(self):
        # The exact names the README quickstart uses.
        from repro import AspPolicy, ClusterSpec, SpecSyncPolicy  # noqa: F401
        from repro.workloads import matrix_factorization_workload  # noqa: F401
