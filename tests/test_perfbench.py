"""Continuous-benchmark pipeline: schema, compare gate, CLI exit codes.

CLI runs stick to the cheap DES micro benches (scheduler, netsim) so the
tier-1 suite stays fast; the wall-clock runtime benches are exercised by
``benchmarks/perf_macro.py`` outside tier 1.
"""

import copy
import json

import pytest

from repro.analysis.findings import Severity
from repro.cli import main
from repro.perfbench import (
    BENCH_SCHEMA_VERSION,
    BenchMetric,
    BenchResult,
    bench_payload,
    compare_benchmarks,
    load_bench_payload,
    render_comparison,
    render_results,
    resolve_scale,
    run_benchmarks,
)


def _payload(values: dict, scale: str = "smoke", kind: str = "rate") -> dict:
    result = BenchResult(name="demo", scale=scale)
    for name, value in values.items():
        result.add(name, value, "u", kind=kind)
    return bench_payload([result], scale)


class TestSchema:
    def test_metric_kind_is_validated(self):
        with pytest.raises(ValueError):
            BenchMetric(value=1.0, unit="u", kind="vibes")

    def test_payload_shape(self):
        payload = _payload({"throughput": 10.0})
        assert payload["schema_version"] == BENCH_SCHEMA_VERSION
        assert payload["scale"] == "smoke"
        metric = payload["benchmarks"]["demo"]["metrics"]["throughput"]
        assert metric == {
            "value": 10.0, "unit": "u",
            "higher_is_better": True, "kind": "rate",
        }

    def test_load_rejects_bad_files(self, tmp_path):
        not_bench = tmp_path / "x.json"
        not_bench.write_text('{"foo": 1}')
        with pytest.raises(ValueError, match="benchmarks"):
            load_bench_payload(str(not_bench))
        future = tmp_path / "future.json"
        future.write_text(json.dumps(
            {"schema_version": BENCH_SCHEMA_VERSION + 1, "benchmarks": {}}
        ))
        with pytest.raises(ValueError, match="newer"):
            load_bench_payload(str(future))

    def test_resolve_scale(self):
        assert resolve_scale(None) == "full"
        assert resolve_scale("smoke") == "smoke"
        with pytest.raises(ValueError):
            resolve_scale("galactic")


class TestRunBenchmarks:
    def test_smoke_micro_benches_emit_expected_metrics(self):
        results = run_benchmarks(["scheduler", "netsim"], scale="smoke")
        by_name = {r.name: r for r in results}
        assert by_name["scheduler"].metrics["checks_run"].kind == "count"
        assert by_name["netsim"].metrics["delivered"].value == 5000
        assert "scheduler" in render_results(results)

    def test_unknown_name_is_rejected(self):
        with pytest.raises(ValueError, match="unknown benchmarks"):
            run_benchmarks(["nope"], scale="smoke")


class TestCompare:
    def test_identical_payloads_are_clean(self):
        payload = _payload({"throughput": 100.0, "wall_s": 2.0})
        assert compare_benchmarks(payload, copy.deepcopy(payload)) == []

    def test_rate_regression_over_tolerance_is_an_error(self):
        old = _payload({"throughput": 100.0})
        new = _payload({"throughput": 79.0})  # -21% > 15% rate tolerance
        findings = compare_benchmarks(old, new)
        assert [f.rule_id for f in findings] == ["PERF-REGRESSION"]
        assert findings[0].severity is Severity.ERROR

    def test_count_metrics_use_the_tight_threshold(self):
        old = _payload({"iters": 100.0}, kind="count")
        drifted = _payload({"iters": 88.0}, kind="count")  # -12% > 10%
        assert [f.rule_id for f in compare_benchmarks(old, drifted)] == [
            "PERF-REGRESSION"
        ]
        # ...but the same move would pass as a rate metric (15%).
        old_rate = _payload({"iters": 100.0})
        drifted_rate = _payload({"iters": 88.0})
        assert compare_benchmarks(old_rate, drifted_rate) == []

    def test_improvements_are_never_findings(self):
        old = _payload({"throughput": 100.0, "wall_s": 2.0})
        better = _payload({"throughput": 250.0, "wall_s": 2.0})
        better["benchmarks"]["demo"]["metrics"]["wall_s"][
            "higher_is_better"
        ] = False
        old["benchmarks"]["demo"]["metrics"]["wall_s"][
            "higher_is_better"
        ] = False
        better["benchmarks"]["demo"]["metrics"]["wall_s"]["value"] = 0.5
        assert compare_benchmarks(old, better) == []

    def test_lower_is_better_regression(self):
        old = _payload({"wall_s": 1.0})
        old["benchmarks"]["demo"]["metrics"]["wall_s"]["higher_is_better"] = False
        slow = copy.deepcopy(old)
        slow["benchmarks"]["demo"]["metrics"]["wall_s"]["value"] = 1.3
        assert [f.rule_id for f in compare_benchmarks(old, slow)] == [
            "PERF-REGRESSION"
        ]

    def test_missing_bench_and_metric_are_warnings(self):
        old = _payload({"a": 1.0, "b": 2.0})
        partial = _payload({"a": 1.0})
        findings = compare_benchmarks(old, partial)
        assert [f.rule_id for f in findings] == ["PERF-MISSING"]
        assert findings[0].severity is Severity.WARNING
        empty = {"schema_version": 1, "scale": "smoke", "benchmarks": {}}
        findings = compare_benchmarks(old, empty)
        assert [f.rule_id for f in findings] == ["PERF-MISSING"]

    def test_scale_mismatch_is_a_warning(self):
        old = _payload({"a": 1.0}, scale="full")
        new = _payload({"a": 1.0}, scale="smoke")
        assert [f.rule_id for f in compare_benchmarks(old, new)] == [
            "PERF-SCALE-MISMATCH"
        ]

    def test_custom_tolerances(self):
        old = _payload({"a": 100.0})
        new = _payload({"a": 95.0})  # -5%
        assert compare_benchmarks(old, new) == []
        findings = compare_benchmarks(old, new, rate_tolerance=0.02)
        assert [f.rule_id for f in findings] == ["PERF-REGRESSION"]

    def test_render_comparison_marks_missing(self):
        old = _payload({"a": 1.0, "gone": 2.0})
        new = _payload({"a": 1.1})
        text = render_comparison(old, new)
        assert "gone" in text and "+10.0%" in text


class TestCli:
    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_bench_run_writes_schema_versioned_files(self, tmp_path, capsys):
        rc = main([
            "bench", "scheduler", "netsim",
            "--scale", "smoke", "--output-dir", str(tmp_path),
        ])
        assert rc == 0
        for name in ("scheduler", "netsim"):
            payload = load_bench_payload(str(tmp_path / f"BENCH_{name}.json"))
            assert payload["schema_version"] == BENCH_SCHEMA_VERSION
            assert payload["scale"] == "smoke"
        assert "notifies_per_s" in capsys.readouterr().out

    def test_bench_creates_missing_output_dir(self, tmp_path):
        target = tmp_path / "deep" / "nested"
        rc = main(["bench", "scheduler", "--scale", "smoke",
                   "--output-dir", str(target)])
        assert rc == 0
        assert (target / "BENCH_scheduler.json").exists()

    def test_bench_scale_env_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        rc = main(["bench", "scheduler", "--output-dir", str(tmp_path)])
        assert rc == 0
        payload = load_bench_payload(str(tmp_path / "BENCH_scheduler.json"))
        assert payload["scale"] == "smoke"

    def test_compare_identical_exits_zero(self, tmp_path):
        payload = _payload({"throughput": 100.0})
        old = self._write(tmp_path, "old.json", payload)
        new = self._write(tmp_path, "new.json", payload)
        assert main(["bench", "--compare", old, new,
                     "--fail-on", "warning"]) == 0

    def test_compare_regression_exits_nonzero(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", _payload({"throughput": 100.0}))
        new = self._write(tmp_path, "new.json", _payload({"throughput": 79.0}))
        rc = main(["bench", "--compare", old, new, "--fail-on", "warning"])
        assert rc != 0
        assert "PERF-REGRESSION" in capsys.readouterr().out

    def test_compare_fail_on_never_reports_but_passes(self, tmp_path):
        old = self._write(tmp_path, "old.json", _payload({"throughput": 100.0}))
        new = self._write(tmp_path, "new.json", _payload({"throughput": 50.0}))
        assert main(["bench", "--compare", old, new,
                     "--fail-on", "never"]) == 0

    def test_compare_bad_file_exits_two(self, tmp_path, capsys):
        bad = self._write(tmp_path, "bad.json", {"foo": 1})
        ok = self._write(tmp_path, "ok.json", _payload({"a": 1.0}))
        assert main(["bench", "--compare", bad, ok]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_bench_name_exits_two(self, tmp_path, capsys):
        assert main(["bench", "nope",
                     "--output-dir", str(tmp_path)]) == 2
        assert "unknown benchmarks" in capsys.readouterr().err
