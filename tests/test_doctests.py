"""Run the doctest examples embedded in library docstrings."""

import doctest

import pytest

import repro.utils.ascii_plot
import repro.utils.rng
import repro.utils.tables

MODULES = [
    repro.utils.rng,
    repro.utils.tables,
    repro.utils.ascii_plot,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"
