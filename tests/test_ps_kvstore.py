"""Tests for the MXNet-style KVStore facade."""

import numpy as np
import pytest

from repro.ml.optim import ConstantSchedule, SgdUpdateRule
from repro.ps.kvstore import KVStore


def make_store(rate=0.5):
    return KVStore("dist_async", SgdUpdateRule(ConstantSchedule(rate)))


class TestLifecycle:
    def test_create_default(self):
        kv = KVStore.create()
        assert kv.mode == "dist_async"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            KVStore("dist_magic", SgdUpdateRule(ConstantSchedule(0.1)))

    def test_init_and_pull(self):
        kv = make_store()
        kv.init("w", np.arange(4.0))
        np.testing.assert_allclose(kv.pull("w"), [0, 1, 2, 3])

    def test_double_init_rejected(self):
        kv = make_store()
        kv.init("w", np.zeros(2))
        with pytest.raises(KeyError):
            kv.init("w", np.zeros(2))

    def test_pull_unknown_key(self):
        with pytest.raises(KeyError, match="not initialized"):
            make_store().pull("nope")


class TestPush:
    def test_push_applies_sgd(self):
        kv = make_store(rate=0.5)
        kv.init("w", np.array([1.0, 1.0]))
        kv.push("w", np.array([1.0, 2.0]))
        np.testing.assert_allclose(kv.pull("w"), [0.5, 0.0])

    def test_push_returns_key_version(self):
        kv = make_store()
        kv.init("w", np.zeros(2))
        assert kv.push("w", np.zeros(2)) == 1
        assert kv.push("w", np.zeros(2)) == 2
        assert kv.version("w") == 2

    def test_shape_mismatch_rejected(self):
        kv = make_store()
        kv.init("w", np.zeros((2, 2)))
        with pytest.raises(ValueError):
            kv.push("w", np.zeros(3))

    def test_pull_returns_copy(self):
        kv = make_store()
        kv.init("w", np.zeros(2))
        pulled = kv.pull("w")
        pulled[0] = 99.0
        assert kv.pull("w")[0] == 0.0

    def test_total_pushes_across_keys(self):
        kv = make_store()
        kv.init("a", np.zeros(1))
        kv.init("b", np.zeros(1))
        kv.push("a", np.zeros(1))
        kv.push("b", np.zeros(1))
        assert kv.total_pushes == 2

    def test_schedule_advances_across_keys(self):
        from repro.ml.optim import StepDecaySchedule

        kv = KVStore("dist_async",
                     SgdUpdateRule(StepDecaySchedule(1.0, (1,), 0.1)))
        kv.init("a", np.array([0.0]))
        kv.init("b", np.array([0.0]))
        kv.push("a", np.array([1.0]))  # rate 1.0
        kv.push("b", np.array([1.0]))  # rate 0.1 (schedule shared)
        np.testing.assert_allclose(kv.pull("a"), [-1.0])
        np.testing.assert_allclose(kv.pull("b"), [-0.1])


class TestRowSparsePull:
    def test_pulls_selected_rows(self):
        kv = make_store()
        kv.init("emb", np.arange(12.0).reshape(4, 3))
        rows = kv.row_sparse_pull("emb", np.array([0, 2]))
        np.testing.assert_allclose(rows, [[0, 1, 2], [6, 7, 8]])

    def test_returns_copy(self):
        kv = make_store()
        kv.init("emb", np.zeros((3, 2)))
        rows = kv.row_sparse_pull("emb", np.array([1]))
        rows[0, 0] = 42.0
        assert kv.pull("emb")[1, 0] == 0.0


class TestRowSparsePullBounds:
    def test_negative_row_id_raises_naming_the_key(self):
        kv = make_store()
        kv.init("emb", np.zeros((4, 3)))
        with pytest.raises(ValueError, match="'emb'"):
            kv.row_sparse_pull("emb", np.array([0, -1]))

    def test_row_id_past_end_raises_with_valid_range(self):
        kv = make_store()
        kv.init("emb", np.zeros((4, 3)))
        with pytest.raises(ValueError, match="0..3"):
            kv.row_sparse_pull("emb", np.array([4]))

    def test_empty_row_ids_is_fine(self):
        kv = make_store()
        kv.init("emb", np.zeros((4, 3)))
        assert kv.row_sparse_pull("emb", np.array([], dtype=np.int64)).shape == (0, 3)


class TestAliasingInvariants:
    """The BUF-ALIAS-STORE / BUF-RETURN-VIEW contracts, dynamically."""

    def test_init_never_aliases_callers_array(self):
        kv = make_store()
        mine = np.ones(3)
        kv.init("w", mine)
        mine[0] = 99.0
        np.testing.assert_allclose(kv.pull("w"), [1, 1, 1])

    def test_pull_never_aliases_internal_array(self):
        kv = make_store()
        kv.init("w", np.ones(3))
        pulled = kv.pull("w")
        pulled[:] = 5.0
        np.testing.assert_allclose(kv.pull("w"), [1, 1, 1])

    def test_as_paramset_never_aliases_internal_arrays(self):
        kv = make_store()
        kv.init("w", np.ones(3))
        snapshot = kv.as_paramset()
        snapshot["w"][:] = -1.0
        np.testing.assert_allclose(kv.pull("w"), [1, 1, 1])


class TestParamSetBridge:
    def test_as_paramset_snapshot(self):
        kv = make_store()
        kv.init("w", np.ones(3))
        kv.init("b", np.zeros(1))
        snapshot = kv.as_paramset()
        kv.push("w", np.ones(3))
        np.testing.assert_allclose(snapshot["w"], [1, 1, 1])
        assert set(snapshot.keys()) == {"w", "b"}

    def test_keys_listing(self):
        kv = make_store()
        kv.init("x", np.zeros(1))
        assert kv.keys == ["x"]
