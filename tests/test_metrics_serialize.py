"""Tests for trace/curve JSON serialization."""

import io
import json

import pytest

from repro import AspPolicy, ClusterSpec, SpecSyncPolicy
from repro.metrics.curves import EvalPoint, LossCurve
from repro.metrics.serialize import (
    curve_from_dict,
    curve_to_dict,
    run_summary_to_dict,
    traces_from_jsonl,
    traces_to_jsonl,
)
from repro.workloads import tiny_workload


@pytest.fixture(scope="module")
def run_result():
    return tiny_workload().run(
        ClusterSpec.homogeneous(3), SpecSyncPolicy.adaptive(), seed=2,
        horizon_s=30.0,
    )


class TestCurveRoundTrip:
    def test_round_trip_preserves_points(self):
        curve = LossCurve()
        curve.add(EvalPoint(1.0, 10, 0.5, accuracy=0.9))
        curve.add(EvalPoint(2.0, 20, 0.4))
        rebuilt = curve_from_dict(curve_to_dict(curve))
        assert len(rebuilt) == 2
        assert rebuilt[0].loss == 0.5
        assert rebuilt[0].accuracy == 0.9
        assert rebuilt[1].accuracy is None

    def test_dict_is_json_serializable(self):
        curve = LossCurve()
        curve.add(EvalPoint(1.0, 10, 0.5))
        json.dumps(curve_to_dict(curve))

    def test_real_run_curve_round_trips(self, run_result):
        rebuilt = curve_from_dict(curve_to_dict(run_result.curve))
        assert rebuilt.losses() == run_result.curve.losses()
        assert rebuilt.times() == run_result.curve.times()


class TestTracesRoundTrip:
    def test_round_trip_preserves_all_events(self, run_result):
        buffer = io.StringIO()
        count = traces_to_jsonl(run_result.traces, buffer)
        assert count == (
            len(run_result.traces.pulls)
            + len(run_result.traces.pushes)
            + len(run_result.traces.aborts)
        )
        buffer.seek(0)
        rebuilt = traces_from_jsonl(buffer)
        assert len(rebuilt.pulls) == len(run_result.traces.pulls)
        assert len(rebuilt.pushes) == len(run_result.traces.pushes)
        assert len(rebuilt.aborts) == len(run_result.traces.aborts)
        assert rebuilt.mean_staleness() == run_result.traces.mean_staleness()

    def test_lines_are_time_ordered(self, run_result):
        buffer = io.StringIO()
        traces_to_jsonl(run_result.traces, buffer)
        times = [json.loads(l)["time"] for l in buffer.getvalue().splitlines()]
        assert times == sorted(times)

    def test_blank_lines_skipped(self):
        rebuilt = traces_from_jsonl(["", "  ", ""])
        assert len(rebuilt.pushes) == 0

    def test_unknown_event_rejected(self):
        with pytest.raises(ValueError):
            traces_from_jsonl([json.dumps({"event": "mystery"})])

    def test_pap_analysis_survives_round_trip(self, run_result):
        from repro.metrics.pap import pap_interval_counts

        buffer = io.StringIO()
        traces_to_jsonl(run_result.traces, buffer)
        buffer.seek(0)
        rebuilt = traces_from_jsonl(buffer)
        original = pap_interval_counts(run_result.traces, 0.5, 2)
        recovered = pap_interval_counts(rebuilt, 0.5, 2)
        assert original == recovered


class TestRunSummary:
    def test_summary_json_serializable(self, run_result):
        payload = run_summary_to_dict(run_result)
        json.dumps(payload)

    def test_summary_fields(self, run_result):
        payload = run_summary_to_dict(run_result)
        assert payload["scheme"] == "specsync-adaptive"
        assert payload["workload"] == "tiny"
        assert payload["total_iterations"] == run_result.total_iterations
        assert len(payload["workers"]) == 3
        assert payload["curve"]["points"]

    def test_policy_summary_filtered_to_scalars(self, run_result):
        payload = run_summary_to_dict(run_result)
        for value in payload["policy_summary"].values():
            assert isinstance(value, (int, float, str, bool, type(None)))
