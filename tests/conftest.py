"""Shared fixtures: runtime tests run under the dynamic lock sanitizer.

The tier-1 runtime test modules (threaded and multiprocess backends) are
transparently instrumented: every ``threading.Lock``/``RLock`` the
runtime creates during those tests is traced, and after each test the
observed lock-acquisition-order graph is checked for cycles.  The tests
themselves are unchanged — a lock-order regression anywhere in the
runtime fails the suite with a ``DYN-LOCK-CYCLE`` message even if the
unlucky interleaving never actually deadlocked on this machine.

Only cycles are checked here (not locks-held-at-exit): daemon timer
threads may legitimately straggle past a test's end, and the full
held-at-exit check — with its grace period — belongs to ``repro
sanitize``, not to every test teardown.
"""

import pytest

#: test modules whose runs get lock instrumentation
_INSTRUMENTED_MODULES = {"test_runtime_threaded", "test_runtime_multiprocess"}


@pytest.fixture(autouse=True)
def _runtime_lock_sanitizer(request):
    """Trace runtime locks during runtime-backend tests; fail on cycles."""
    module_name = request.module.__name__.rsplit(".", 1)[-1]
    if module_name not in _INSTRUMENTED_MODULES:
        yield
        return

    from repro.analysis.dynamic import (
        cycle_findings,
        observed_lock_graph,
        traced_runtime_locks,
    )

    with traced_runtime_locks() as trace:
        yield
    findings = cycle_findings(observed_lock_graph(trace))
    if findings:
        pytest.fail(
            "dynamic lock sanitizer found lock-order cycles:\n"
            + "\n".join(f.render() for f in findings)
        )
