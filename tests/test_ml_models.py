"""Tests for the numerical models: gradient correctness and training sanity."""

import numpy as np
import pytest

from repro.ml import (
    LinearRegressionModel,
    MatrixFactorizationModel,
    MLPModel,
    SoftmaxRegressionModel,
)
from repro.ml.models.softmax import cross_entropy, softmax


def rng():
    return np.random.default_rng(0)


def classification_batch(n=40, dim=6, classes=3, seed=0):
    r = np.random.default_rng(seed)
    X = r.normal(size=(n, dim))
    y = r.integers(0, classes, size=n)
    return X, y


class TestSoftmaxHelpers:
    def test_softmax_rows_sum_to_one(self):
        probs = softmax(rng().normal(size=(7, 4)))
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(7))

    def test_softmax_stability_large_logits(self):
        probs = softmax(np.array([[1000.0, 0.0], [0.0, 1000.0]]))
        assert np.all(np.isfinite(probs))
        assert probs[0, 0] == pytest.approx(1.0)

    def test_cross_entropy_perfect_prediction(self):
        probs = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert cross_entropy(probs, np.array([0, 1])) == pytest.approx(0.0, abs=1e-9)

    def test_cross_entropy_uniform(self):
        probs = np.full((5, 4), 0.25)
        assert cross_entropy(probs, np.zeros(5, dtype=int)) == pytest.approx(
            np.log(4)
        )


class TestSoftmaxRegression:
    def test_gradient_matches_finite_differences(self):
        model = SoftmaxRegressionModel(input_dim=6, num_classes=3, reg=1e-3)
        params = model.init_params(rng())
        batch = classification_batch()
        assert model.check_gradient(params, batch) < 1e-5

    def test_loss_decreases_under_gd(self):
        model = SoftmaxRegressionModel(input_dim=6, num_classes=3)
        params = model.init_params(rng())
        X, y = classification_batch(n=200)
        first = model.loss(params, (X, y))
        for _ in range(50):
            _, grad = model.loss_and_grad(params, (X, y))
            params.add_scaled(grad, -0.5)
        assert model.loss(params, (X, y)) < first

    def test_accuracy_bounds(self):
        model = SoftmaxRegressionModel(input_dim=6, num_classes=3)
        params = model.init_params(rng())
        acc = model.accuracy(params, classification_batch())
        assert 0.0 <= acc <= 1.0

    def test_bad_shapes_rejected(self):
        model = SoftmaxRegressionModel(input_dim=6, num_classes=3)
        params = model.init_params(rng())
        with pytest.raises(ValueError):
            model.loss(params, (np.zeros((4, 5)), np.zeros(4, dtype=int)))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SoftmaxRegressionModel(input_dim=0, num_classes=3)
        with pytest.raises(ValueError):
            SoftmaxRegressionModel(input_dim=5, num_classes=1)


class TestMLP:
    def test_param_shapes(self):
        model = MLPModel(input_dim=6, hidden_dims=[8, 4], num_classes=3)
        params = model.init_params(rng())
        assert params["w0"].shape == (6, 8)
        assert params["w1"].shape == (8, 4)
        assert params["w2"].shape == (4, 3)
        assert params["b2"].shape == (3,)

    def test_gradient_matches_finite_differences(self):
        model = MLPModel(input_dim=5, hidden_dims=[7], num_classes=3, reg=1e-3)
        params = model.init_params(rng())
        batch = classification_batch(dim=5)
        assert model.check_gradient(params, batch, sample_size=40) < 1e-4

    def test_two_hidden_layer_gradient(self):
        model = MLPModel(input_dim=4, hidden_dims=[6, 5], num_classes=3, reg=0.0)
        params = model.init_params(rng())
        batch = classification_batch(dim=4)
        assert model.check_gradient(params, batch, sample_size=40) < 1e-4

    def test_loss_decreases_under_gd(self):
        model = MLPModel(input_dim=6, hidden_dims=[16], num_classes=3)
        params = model.init_params(rng())
        X, y = classification_batch(n=200)
        first = model.loss(params, (X, y))
        for _ in range(80):
            _, grad = model.loss_and_grad(params, (X, y))
            params.add_scaled(grad, -0.5)
        assert model.loss(params, (X, y)) < first * 0.9

    def test_empty_hidden_rejected(self):
        with pytest.raises(ValueError):
            MLPModel(input_dim=4, hidden_dims=[], num_classes=3)

    def test_negative_hidden_rejected(self):
        with pytest.raises(ValueError):
            MLPModel(input_dim=4, hidden_dims=[8, -1], num_classes=3)


class TestMatrixFactorization:
    def make(self):
        return MatrixFactorizationModel(
            num_users=12, num_items=9, rank=4, reg=0.05, global_mean=3.0
        )

    def make_batch(self, n=30, seed=0):
        r = np.random.default_rng(seed)
        return (
            r.integers(0, 12, size=n),
            r.integers(0, 9, size=n),
            r.uniform(1, 5, size=n),
        )

    def test_param_shapes(self):
        params = self.make().init_params(rng())
        assert params["user_factors"].shape == (12, 4)
        assert params["item_factors"].shape == (9, 4)
        assert params["user_bias"].shape == (12,)
        assert params["item_bias"].shape == (9,)

    def test_gradient_matches_finite_differences(self):
        model = self.make()
        params = model.init_params(rng())
        batch = self.make_batch()
        assert model.check_gradient(params, batch, sample_size=40) < 1e-4

    def test_gradient_sparse_rows_zero(self):
        model = self.make()
        params = model.init_params(rng())
        users = np.array([0, 1])
        items = np.array([2, 3])
        ratings = np.array([4.0, 2.0])
        _, grad = model.loss_and_grad(params, (users, items, ratings))
        # untouched user/item rows have zero gradient
        assert np.all(grad["user_factors"][5] == 0.0)
        assert np.all(grad["item_factors"][7] == 0.0)
        assert np.any(grad["user_factors"][0] != 0.0)

    def test_repeated_index_accumulates(self):
        model = self.make()
        params = model.init_params(rng())
        users = np.array([0, 0])
        items = np.array([1, 1])
        ratings = np.array([5.0, 5.0])
        _, grad_twice = model.loss_and_grad(params, (users, items, ratings))
        _, grad_once = model.loss_and_grad(
            params, (users[:1], items[:1], ratings[:1])
        )
        # Duplicated sample, same mean loss: same gradient.
        assert grad_twice.allclose(grad_once, atol=1e-10)

    def test_loss_decreases_under_gd(self):
        model = self.make()
        params = model.init_params(rng())
        batch = self.make_batch(n=60)
        first = model.loss(params, batch)
        for _ in range(100):
            _, grad = model.loss_and_grad(params, batch)
            params.add_scaled(grad, -0.1)
        assert model.loss(params, batch) < first

    def test_mismatched_lengths_rejected(self):
        model = self.make()
        params = model.init_params(rng())
        with pytest.raises(ValueError):
            model.loss(params, (np.array([0]), np.array([1, 2]), np.array([3.0])))

    def test_empty_batch_rejected(self):
        model = self.make()
        params = model.init_params(rng())
        with pytest.raises(ValueError):
            model.loss(params, (np.array([]), np.array([]), np.array([])))


class TestLinearRegression:
    def test_gradient_matches_finite_differences(self):
        model = LinearRegressionModel(input_dim=5, reg=0.01)
        params = model.init_params(rng())
        r = np.random.default_rng(1)
        batch = (r.normal(size=(30, 5)), r.normal(size=30))
        assert model.check_gradient(params, batch) < 1e-6

    def test_sgd_approaches_exact_solution(self):
        r = np.random.default_rng(2)
        X = r.normal(size=(400, 3))
        true_w = np.array([1.5, -2.0, 0.5])
        y = X @ true_w + 0.7
        model = LinearRegressionModel(input_dim=3, reg=0.0)
        params = model.init_params(rng())
        for _ in range(600):
            idx = r.integers(0, len(X), size=32)
            _, grad = model.loss_and_grad(params, (X[idx], y[idx]))
            params.add_scaled(grad, -0.05)
        exact = model.solve_exact(X, y)
        np.testing.assert_allclose(params["weights"], exact["weights"], atol=0.05)
        np.testing.assert_allclose(params["bias"], exact["bias"], atol=0.05)

    def test_solve_exact_recovers_planted(self):
        r = np.random.default_rng(3)
        X = r.normal(size=(200, 2))
        y = X @ np.array([2.0, -1.0]) + 3.0
        model = LinearRegressionModel(input_dim=2)
        exact = model.solve_exact(X, y)
        np.testing.assert_allclose(exact["weights"], [2.0, -1.0], atol=1e-8)
        np.testing.assert_allclose(exact["bias"], [3.0], atol=1e-8)
