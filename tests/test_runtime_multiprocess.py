"""Tests for the multi-process backend (real OS processes + queues)."""

import numpy as np
import pytest

from repro.cluster.compute import ComputeTimeModel
from repro.core.hyperparams import SpecSyncHyperparams
from repro.core.tuning import AdaptiveTuner, FixedTuner
from repro.ml import SoftmaxRegressionModel, SyntheticImageDataset
from repro.ml.optim import ConstantSchedule, SgdUpdateRule
from repro.runtime import MultiprocessRun


def build_run(num_workers=4, tuner=None, time_scale=0.004, seed=0, **kwargs):
    dataset = SyntheticImageDataset(
        num_classes=3, feature_dim=8, num_samples=800,
        class_separation=3.0, warp=False, seed=0,
    )
    partitions = dataset.partition(num_workers, np.random.default_rng(0))
    return MultiprocessRun(
        model=SoftmaxRegressionModel(input_dim=8, num_classes=3),
        partitions=partitions,
        eval_batch=dataset.eval_batch(),
        update_rule=SgdUpdateRule(ConstantSchedule(0.2)),
        compute_model=ComputeTimeModel(mean_time_s=4.0, jitter_sigma=0.1),
        batch_size=32,
        time_scale=time_scale,
        tuner=tuner,
        seed=seed,
        **kwargs,
    )


class TestAspMode:
    def test_processes_make_progress(self):
        result = build_run(tuner=None).run(0.7)
        assert result.total_iterations > 0
        assert result.total_aborts == 0
        assert all(v > 0 for v in result.per_worker_iterations.values())

    def test_staleness_positive_with_real_concurrency(self):
        result = build_run(num_workers=4, tuner=None).run(0.7)
        assert result.mean_staleness > 0

    def test_loss_improves(self):
        run = build_run(tuner=None, time_scale=0.002)
        ds_loss_initial = None  # model init is inside the run; compare to chance
        result = run.run(0.8)
        # 3-class problem: training must beat the ln(3)≈1.1 chance level.
        assert result.final_loss < 0.8


class TestSpecSyncMode:
    def test_fixed_tuner_aborts_across_processes(self):
        tuner = FixedTuner(SpecSyncHyperparams(abort_time_s=0.008, abort_rate=0.3))
        result = build_run(num_workers=4, tuner=tuner).run(0.7)
        assert result.resyncs_sent > 0
        assert result.total_aborts > 0

    def test_adaptive_tuner_tunes(self):
        result = build_run(num_workers=4, tuner=AdaptiveTuner()).run(1.0)
        assert result.epochs_tuned > 0

    def test_unreachable_threshold_never_aborts(self):
        tuner = FixedTuner(SpecSyncHyperparams(abort_time_s=0.001, abort_rate=10.0))
        result = build_run(num_workers=3, tuner=tuner).run(0.5)
        assert result.total_aborts == 0


class TestValidation:
    def test_empty_partitions_rejected(self):
        with pytest.raises(ValueError):
            MultiprocessRun(
                model=SoftmaxRegressionModel(4, 2),
                partitions=[],
                eval_batch=None,
                update_rule=SgdUpdateRule(ConstantSchedule(0.1)),
                compute_model=ComputeTimeModel(mean_time_s=1.0),
            )

    def test_bad_duration_rejected(self):
        with pytest.raises(ValueError):
            build_run().run(0.0)

    def test_bad_time_scale_rejected(self):
        dataset = SyntheticImageDataset(
            num_classes=2, feature_dim=4, num_samples=100, seed=0
        )
        with pytest.raises(ValueError):
            MultiprocessRun(
                model=SoftmaxRegressionModel(4, 2),
                partitions=dataset.partition(1, np.random.default_rng(0)),
                eval_batch=dataset.eval_batch(),
                update_rule=SgdUpdateRule(ConstantSchedule(0.1)),
                compute_model=ComputeTimeModel(mean_time_s=1.0),
                time_scale=-1.0,
            )
