"""Documentation contract: every public item carries a docstring."""

import importlib
import inspect

import pytest

MODULES = [
    "repro",
    "repro.analysis.dynamic",
    "repro.analysis.dynamic.locks",
    "repro.analysis.dynamic.lockorder",
    "repro.analysis.dynamic.lockset",
    "repro.analysis.dynamic.replay",
    "repro.analysis.dynamic.sanitize",
    "repro.analysis.dynamic.trace",
    "repro.analysis.gate",
    "repro.analysis.graphs",
    "repro.analysis.model",
    "repro.analysis.model.checker",
    "repro.analysis.model.conformance",
    "repro.analysis.model.harness",
    "repro.analysis.model.mutations",
    "repro.analysis.model.specsync",
    "repro.cluster.compute",
    "repro.cluster.instances",
    "repro.cluster.scenarios",
    "repro.cluster.spec",
    "repro.core.hyperparams",
    "repro.core.scheduler",
    "repro.core.specsync",
    "repro.core.tuning",
    "repro.events.event",
    "repro.events.simulator",
    "repro.experiments.common",
    "repro.experiments.sweep",
    "repro.metrics.convergence",
    "repro.metrics.curves",
    "repro.metrics.pap",
    "repro.metrics.serialize",
    "repro.metrics.staleness",
    "repro.metrics.traces",
    "repro.ml.models.base",
    "repro.ml.optim",
    "repro.ml.params",
    "repro.netsim.ledger",
    "repro.netsim.messages",
    "repro.netsim.network",
    "repro.obs.metrics",
    "repro.obs.perf",
    "repro.obs.perf_report",
    "repro.obs.straggler",
    "repro.obs.timeseries",
    "repro.perfbench",
    "repro.perfbench.benches",
    "repro.perfbench.compare",
    "repro.perfbench.core",
    "repro.ps.engine",
    "repro.ps.kvstore",
    "repro.ps.policy",
    "repro.ps.result",
    "repro.ps.store",
    "repro.runtime.multiprocess",
    "repro.runtime.threaded",
    "repro.sync.asp",
    "repro.sync.bsp",
    "repro.sync.naive_wait",
    "repro.sync.ssp",
    "repro.utils.ascii_plot",
    "repro.utils.rng",
    "repro.utils.tables",
    "repro.utils.validation",
    "repro.workloads.base",
    "repro.workloads.presets",
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", MODULES)
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
    assert not undocumented, f"{module_name}: missing docstrings on {undocumented}"


def _documented_somewhere(cls, method_name) -> bool:
    """True if the method or any same-named method up the MRO has a doc
    (overrides inherit their contract's documentation)."""
    for base in cls.__mro__:
        candidate = base.__dict__.get(method_name)
        if candidate is None:
            continue
        doc = getattr(candidate, "__doc__", None)
        if doc and doc.strip():
            return True
    return False


@pytest.mark.parametrize("module_name", MODULES)
def test_public_methods_documented(module_name):
    """Public methods of public classes (dataclass-generated members and
    dunders excepted) must carry a docstring directly or via the base-class
    method they override."""
    module = importlib.import_module(module_name)
    missing = []
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if not inspect.isclass(obj):
            continue
        for method_name, method in inspect.getmembers(obj, inspect.isfunction):
            if method_name.startswith("_"):
                continue
            if method.__qualname__.split(".")[0] != obj.__name__:
                continue  # inherited from elsewhere
            if not _documented_somewhere(obj, method_name):
                missing.append(f"{name}.{method_name}")
    assert not missing, f"{module_name}: undocumented methods {missing}"
