"""Exhaustive verification of the SpecSync protocol model + mutants."""

import pytest

from repro.analysis.model import (
    MODEL_ALPHABET,
    MUTATIONS,
    SCHEMES,
    SpecSyncModel,
    explore,
    mutation_names,
    run_modelcheck,
    run_mutation_harness,
)
from repro.netsim.messages import MessageKind


class TestHealthyExhaustive:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_two_workers_fully_verified(self, scheme):
        model = SpecSyncModel(num_workers=2, scheme=scheme, max_iterations=2)
        result = explore(model)
        assert result.ok, "\n".join(v.render() for v in result.violations)
        assert result.terminal_states >= 1
        assert not result.truncated

    def test_three_workers_specsync_smoke(self):
        # The m=3 full sweep runs in CI via `repro modelcheck --workers 3`;
        # here a reduced iteration bound keeps the tier-1 suite fast.
        model = SpecSyncModel(num_workers=3, scheme="specsync", max_iterations=1)
        result = explore(model)
        assert result.ok
        assert result.states > 100

    def test_specsync_actually_resyncs(self):
        # The healthy model must exercise the abort path — otherwise the
        # re-sync invariants would be vacuously true.
        model = SpecSyncModel(num_workers=2, scheme="specsync", max_iterations=2)
        seen = set()
        frontier = [model.initial_state()]
        visited = {frontier[0]}
        abort_seen = False
        while frontier:
            state = frontier.pop()
            for action, nxt in model.successors(state):
                seen.add(action.kind)
                if action.kind == "resync":
                    pre = state.workers[action.worker]
                    post = nxt.workers[action.worker]
                    if post.aborts > pre.aborts:
                        abort_seen = True
                if nxt not in visited:
                    visited.add(nxt)
                    frontier.append(nxt)
        assert {k.wire_name for k in MessageKind} <= seen
        assert abort_seen, "no abort is reachable — invariants are vacuous"

    def test_bsp_never_resyncs(self):
        model = SpecSyncModel(num_workers=2, scheme="bsp", max_iterations=2)
        frontier = [model.initial_state()]
        visited = {frontier[0]}
        while frontier:
            state = frontier.pop()
            for action, nxt in model.successors(state):
                assert action.kind not in ("notify", "resync", "resync_check")
                if nxt not in visited:
                    visited.add(nxt)
                    frontier.append(nxt)


class TestModelValidation:
    def test_rejects_bad_scheme(self):
        with pytest.raises(ValueError):
            SpecSyncModel(num_workers=2, scheme="psync")

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            SpecSyncModel(num_workers=0)

    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ValueError):
            SpecSyncModel(num_workers=2, threshold=0.0)

    def test_alphabet_mirrors_message_kind(self):
        assert set(MODEL_ALPHABET) == set(MessageKind)

    def test_render_vocabulary_uses_enum_names(self):
        model = SpecSyncModel(num_workers=2)
        state = model.initial_state()
        actions = [a for a, _ in model.successors(state)]
        rendered = {a.render().split()[0] for a in actions}
        assert "PULL_REQUEST" in rendered


@pytest.fixture(scope="module")
def mutant_outcomes():
    """One harness run shared by every mutation test (it is the slow bit)."""
    return {o.mutation.name: o for o in run_mutation_harness()}


class TestMutationHarness:
    def test_registry_has_at_least_five(self):
        assert len(MUTATIONS) >= 5
        assert len(set(mutation_names())) == len(MUTATIONS)

    def test_every_mutant_is_rejected(self, mutant_outcomes):
        survivors = [name for name, o in mutant_outcomes.items() if not o.caught]
        assert not survivors, f"mutants survived the checker: {survivors}"

    def test_counterexamples_are_readable(self, mutant_outcomes):
        for name, outcome in mutant_outcomes.items():
            assert outcome.counterexample, name
            assert outcome.counterexample[0].lstrip().startswith("init:")
            # every subsequent line is a numbered step in MessageKind vocabulary
            assert all(
                line.lstrip().startswith("step ")
                for line in outcome.counterexample[1:]
            ), name

    @pytest.mark.parametrize("mutation", MUTATIONS, ids=lambda m: m.name)
    def test_expected_property_class_fires(self, mutation, mutant_outcomes):
        outcome = mutant_outcomes[mutation.name]
        assert outcome.caught
        # `expect` names the property: "action-invariant foo",
        # "state-invariant bar", "deadlock", "dropped-message ...".
        words = mutation.expect.split()
        expected_kind = words[0]
        matching = [v for v in outcome.violations if v.startswith(expected_kind)]
        assert matching, (
            f"{mutation.name}: expected {mutation.expect}, got {outcome.violations}"
        )
        if len(words) > 1 and expected_kind.endswith("invariant"):
            assert any(words[1] in v for v in matching), (
                f"{mutation.name}: expected invariant {words[1]!r} "
                f"among {matching}"
            )


class TestRunModelcheck:
    def test_all_schemes_pass_at_m2(self):
        report = run_modelcheck(workers=2)
        assert report.ok, report.render_text()
        assert [c.scheme for c in report.schemes] == list(SCHEMES)
        assert report.findings == []

    def test_truncation_becomes_a_finding(self):
        report = run_modelcheck(schemes=["specsync"], workers=2, max_states=50)
        assert not report.ok
        assert any(f.rule_id == "MODEL-TRUNCATED" for f in report.findings)

    def test_report_serializes(self):
        report = run_modelcheck(schemes=["bsp"], workers=2)
        data = report.to_dict()
        assert data["ok"] is True
        assert data["schemes"][0]["scheme"] == "bsp"
        assert "PASS" in report.render_text()
