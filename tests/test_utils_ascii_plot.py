"""Tests for the terminal plotting helpers."""

import pytest

from repro.utils.ascii_plot import ascii_plot, sparkline


class TestSparkline:
    def test_monotone_ramp(self):
        line = sparkline([0, 1, 2, 3], width=4)
        assert len(line) == 4
        # levels must be non-decreasing for a ramp
        levels = " .:-=+*#%@"
        assert [levels.index(c) for c in line] == sorted(
            levels.index(c) for c in line
        )

    def test_constant_series(self):
        line = sparkline([5, 5, 5], width=3)
        assert len(set(line)) == 1

    def test_empty(self):
        assert sparkline([]) == ""

    def test_resampling_long_series(self):
        line = sparkline(list(range(1000)), width=10)
        assert len(line) == 10

    def test_bad_width(self):
        with pytest.raises(ValueError):
            sparkline([1, 2], width=0)


class TestAsciiPlot:
    def test_renders_axes_and_legend(self):
        out = ascii_plot(
            {"loss": [(0, 2.0), (10, 1.0), (20, 0.5)]},
            width=30, height=8, x_label="time", y_label="loss",
        )
        assert "time" in out
        assert "loss" in out
        assert "* = loss" in out
        assert "2" in out and "0.5" in out  # y extremes labelled

    def test_multiple_series_distinct_marks(self):
        out = ascii_plot(
            {"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]},
            width=20, height=6,
        )
        assert "* = a" in out
        assert "+ = b" in out

    def test_descending_curve_rasterizes_descending(self):
        out = ascii_plot({"s": [(0, 10.0), (1, 0.0)]}, width=20, height=6)
        lines = [l.split("|", 1)[1] for l in out.splitlines() if "|" in l]
        first_row_col = lines[0].find("*")
        last_row_col = lines[-1].find("*")
        assert first_row_col >= 0 and last_row_col >= 0
        assert first_row_col < last_row_col  # high-y point is left & up

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({})
        with pytest.raises(ValueError):
            ascii_plot({"x": []})

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({"x": [(0, 0)]}, width=5, height=2)

    def test_single_point(self):
        out = ascii_plot({"p": [(1.0, 1.0)]}, width=12, height=4)
        assert "*" in out
