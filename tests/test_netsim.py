"""Tests for the network model and transfer ledger."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.events import Simulator
from repro.netsim import (
    CONTROL_MESSAGE_BYTES,
    LinkModel,
    Message,
    MessageKind,
    Network,
    TransferLedger,
)


def make_message(kind=MessageKind.PUSH, size=1000.0, src="a", dst="b", streams=1):
    return Message(kind=kind, src=src, dst=dst, size_bytes=size,
                   parallel_streams=streams)


class TestMessage:
    def test_categories(self):
        assert MessageKind.PULL_RESPONSE.category == "pull"
        assert MessageKind.PUSH.category == "push"
        for kind in (MessageKind.NOTIFY, MessageKind.RESYNC,
                     MessageKind.PULL_REQUEST, MessageKind.PUSH_ACK):
            assert kind.category == "control"

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            make_message(size=-1)

    def test_zero_streams_rejected(self):
        with pytest.raises(ValueError):
            make_message(streams=0)

    def test_unique_ids(self):
        assert make_message().msg_id != make_message().msg_id

    def test_control_message_bytes_is_small(self):
        assert 0 < CONTROL_MESSAGE_BYTES <= 1024


class TestLinkModel:
    def test_delay_scales_with_size(self):
        link = LinkModel(bandwidth_bytes_per_s=1000.0, base_latency_s=0.0)
        assert link.delay_for(1000, None) == pytest.approx(1.0)
        assert link.delay_for(2000, None) == pytest.approx(2.0)

    def test_latency_floor(self):
        link = LinkModel(bandwidth_bytes_per_s=1e12, base_latency_s=0.01)
        assert link.delay_for(1, None) == pytest.approx(0.01, rel=1e-3)

    def test_parallel_streams_divide_serialization(self):
        link = LinkModel(bandwidth_bytes_per_s=1000.0, base_latency_s=0.0)
        assert link.delay_for(1000, None, parallel_streams=4) == pytest.approx(0.25)

    def test_congestion_factor(self):
        base = LinkModel(bandwidth_bytes_per_s=1000.0, base_latency_s=0.0)
        congested = LinkModel(
            bandwidth_bytes_per_s=1000.0, base_latency_s=0.0, congestion_factor=2.0
        )
        assert congested.delay_for(1000, None) == 2 * base.delay_for(1000, None)

    def test_jitter_requires_rng(self):
        link = LinkModel(jitter_sigma=0.5)
        # No rng -> deterministic fallback
        assert link.delay_for(1000, None) == link.delay_for(1000, None)

    def test_jitter_varies_with_rng(self):
        link = LinkModel(jitter_sigma=0.5)
        rng = np.random.default_rng(0)
        delays = {link.delay_for(1000, rng) for _ in range(5)}
        assert len(delays) == 5

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            LinkModel(bandwidth_bytes_per_s=0)
        with pytest.raises(ValueError):
            LinkModel(base_latency_s=-1)


class TestNetwork:
    def test_delivery_after_delay(self):
        sim = Simulator()
        net = Network(sim, link=LinkModel(bandwidth_bytes_per_s=1000, base_latency_s=0.5))
        delivered = []
        net.send(make_message(size=1000), lambda m: delivered.append(sim.now))
        sim.run()
        assert delivered == [pytest.approx(1.5)]

    def test_loopback_is_instant_and_unaccounted(self):
        sim = Simulator()
        net = Network(sim)
        delivered = []
        net.send(
            make_message(src="n", dst="n", size=1e9),
            lambda m: delivered.append(sim.now),
        )
        sim.run()
        assert delivered == [0.0]
        assert net.ledger.total_bytes == 0

    def test_remote_messages_accounted_at_delivery(self):
        sim = Simulator()
        net = Network(sim)
        net.send(make_message(size=500), lambda m: None)
        assert net.ledger.total_bytes == 0  # not yet delivered
        sim.run()
        assert net.ledger.total_bytes == 500

    def test_in_flight_counter(self):
        sim = Simulator()
        net = Network(sim)
        net.send(make_message(), lambda m: None)
        assert net.in_flight == 1
        sim.run()
        assert net.in_flight == 0
        assert net.messages_delivered == 1


class TestTransferLedger:
    def test_breakdown_by_category(self):
        ledger = TransferLedger()
        ledger.record(1.0, make_message(MessageKind.PULL_RESPONSE, 100))
        ledger.record(2.0, make_message(MessageKind.PUSH, 200))
        ledger.record(3.0, make_message(MessageKind.NOTIFY, 10))
        breakdown = ledger.bytes_by_category()
        assert breakdown == {"pull": 100, "push": 200, "control": 10}

    def test_cumulative_at(self):
        ledger = TransferLedger()
        ledger.record(1.0, make_message(size=100))
        ledger.record(2.0, make_message(size=50))
        assert ledger.cumulative_at(0.5) == 0
        assert ledger.cumulative_at(1.0) == 100
        assert ledger.cumulative_at(5.0) == 150

    def test_cumulative_series(self):
        ledger = TransferLedger()
        ledger.record(1.0, make_message(size=100))
        series = ledger.cumulative_series([0.0, 1.0, 2.0])
        assert series == [(0.0, 0.0), (1.0, 100.0), (2.0, 100.0)]

    def test_out_of_order_rejected(self):
        ledger = TransferLedger()
        ledger.record(2.0, make_message())
        with pytest.raises(ValueError):
            ledger.record(1.0, make_message())

    def test_control_fraction(self):
        ledger = TransferLedger()
        assert ledger.control_fraction() == 0.0
        ledger.record(1.0, make_message(MessageKind.PUSH, 990))
        ledger.record(2.0, make_message(MessageKind.NOTIFY, 10))
        assert ledger.control_fraction() == pytest.approx(0.01)

    @given(st.lists(st.floats(min_value=0, max_value=1e9), min_size=1, max_size=50))
    def test_cumulative_is_monotone_and_totals_match(self, sizes):
        ledger = TransferLedger()
        for i, size in enumerate(sizes):
            ledger.record(float(i), make_message(size=size))
        series = ledger.cumulative_series([float(i) for i in range(len(sizes))])
        values = [v for _, v in series]
        assert all(a <= b for a, b in zip(values, values[1:]))
        assert values[-1] == pytest.approx(sum(sizes))
        assert ledger.total_bytes == pytest.approx(sum(sizes))


class TestPerNodeBandwidth:
    def make_net(self, node_bandwidth):
        sim = Simulator()
        net = Network(
            sim,
            link=LinkModel(bandwidth_bytes_per_s=1000.0, base_latency_s=0.0),
            node_bandwidth=node_bandwidth,
        )
        return sim, net

    def deliver_time(self, sim, net, src, dst, size=1000.0):
        times = []
        net.send(make_message(src=src, dst=dst, size=size),
                 lambda m: times.append(sim.now))
        sim.run()
        return times[0]

    def test_slow_nic_limits_transfer(self):
        sim, net = self.make_net({"slow-node": 100.0})
        assert self.deliver_time(sim, net, "slow-node", "servers") == pytest.approx(10.0)

    def test_fast_nic_capped_by_fabric(self):
        sim, net = self.make_net({"fast-node": 10_000.0})
        # Fabric link (1000 B/s) is the bottleneck, not the 10k NIC.
        assert self.deliver_time(sim, net, "fast-node", "servers") == pytest.approx(1.0)

    def test_unknown_endpoints_use_default_link(self):
        sim, net = self.make_net({"other": 10.0})
        assert self.deliver_time(sim, net, "a", "b") == pytest.approx(1.0)

    def test_slowest_endpoint_wins(self):
        sim, net = self.make_net({"a": 500.0, "b": 250.0})
        assert self.deliver_time(sim, net, "a", "b") == pytest.approx(4.0)

    def test_empty_map_is_noop(self):
        sim, net = self.make_net({})
        assert self.deliver_time(sim, net, "a", "b") == pytest.approx(1.0)


class TestNodeTransferSerialization:
    def make_net(self, serialize=True):
        sim = Simulator()
        net = Network(
            sim,
            link=LinkModel(bandwidth_bytes_per_s=1000.0, base_latency_s=0.0),
            serialize_node_transfers=serialize,
        )
        return sim, net

    def test_same_sender_transfers_queue(self):
        sim, net = self.make_net()
        times = []
        # Two 1s transfers from the same node, sent back to back.
        net.send(make_message(src="a", dst="x", size=1000),
                 lambda m: times.append(sim.now))
        net.send(make_message(src="a", dst="y", size=1000),
                 lambda m: times.append(sim.now))
        sim.run()
        assert times == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_different_senders_parallel(self):
        sim, net = self.make_net()
        times = []
        net.send(make_message(src="a", dst="x", size=1000),
                 lambda m: times.append(sim.now))
        net.send(make_message(src="b", dst="x", size=1000),
                 lambda m: times.append(sim.now))
        sim.run()
        assert times == [pytest.approx(1.0), pytest.approx(1.0)]

    def test_disabled_by_default(self):
        sim, net = self.make_net(serialize=False)
        times = []
        net.send(make_message(src="a", dst="x", size=1000),
                 lambda m: times.append(sim.now))
        net.send(make_message(src="a", dst="y", size=1000),
                 lambda m: times.append(sim.now))
        sim.run()
        assert times == [pytest.approx(1.0), pytest.approx(1.0)]

    def test_nic_frees_up_over_time(self):
        sim, net = self.make_net()
        times = []
        net.send(make_message(src="a", dst="x", size=1000),
                 lambda m: times.append(sim.now))
        sim.run()
        # After the first transfer completes, a later send is unqueued.
        net.send(make_message(src="a", dst="y", size=500),
                 lambda m: times.append(sim.now))
        sim.run()
        assert times[1] == pytest.approx(1.5)


class TestDelayProperties:
    def test_delay_monotone_in_size(self):
        link = LinkModel(bandwidth_bytes_per_s=1e6, base_latency_s=0.001)
        sizes = [0, 10, 1e3, 1e6, 1e9]
        delays = [link.delay_for(s, None) for s in sizes]
        assert delays == sorted(delays)

    def test_delay_decreases_with_streams(self):
        link = LinkModel(bandwidth_bytes_per_s=1e6, base_latency_s=0.0)
        delays = [link.delay_for(1e6, None, parallel_streams=k)
                  for k in (1, 2, 4, 8)]
        assert delays == sorted(delays, reverse=True)

    def test_deterministic_without_jitter(self):
        sim = Simulator()
        net = Network(sim, link=LinkModel(jitter_sigma=0.0))
        times = []
        for _ in range(3):
            net.send(make_message(size=1234), lambda m: times.append(sim.now))
        sim.run()
        assert len(set(times)) == 1
