"""Tests for the live telemetry plane (repro.obs.live).

Covers the binary wire format, the SPSC ring (wraparound, overflow
drop-counting, cross-process visibility under fork), the writer facades,
the online aggregator (rates, phases, clock alignment, detector feeds),
the session lifecycle, and the end-to-end multiprocess capture: a
live-exported run must drain to a trace-format-v2 file whose analysis
agrees with the conventionally-traced copy of the same run.
"""

import json
import multiprocessing
import struct

import numpy as np
import pytest

from repro import obs
from repro.cluster.compute import ComputeTimeModel
from repro.core.tuning import AdaptiveTuner
from repro.ml import SoftmaxRegressionModel, SyntheticImageDataset
from repro.ml.optim import ConstantSchedule, SgdUpdateRule
from repro.obs.analysis import analyze_trace
from repro.obs.live import (
    LiveAnnounce,
    LiveCount,
    LiveGauge,
    LiveInstant,
    LiveSample,
    LiveSpan,
    LiveTelemetrySession,
    NULL_RING_WRITER,
    RingWriter,
    ShmRing,
    TelemetryAggregator,
    decode_record,
    encode_record,
    render_dashboard,
    replay_trace,
    run_dashboard,
    trace_worker_count,
)
from repro.runtime import MultiprocessRun

ALL_RECORDS = [
    LiveSpan(track="rt.worker-0", name="compute", cat="compute",
             start=1.25, end=2.5),
    LiveInstant(track="rt.worker-1", name="abort", cat="abort", ts=3.0,
                args_json='{"worker": 1}'),
    LiveCount(name="rt.pushes", amount=2.0, ts=4.0),
    LiveGauge(name="rt.queue.request_depth", value=3.0, ts=5.0),
    LiveSample(name="rt.msg.push.latency_s", value=0.001, ts=6.0),
    LiveAnnounce(source="worker-0", writer_ts=0.5,
                 meta_json='{"clock": "shared"}'),
]


class TestWireFormat:
    @pytest.mark.parametrize("record", ALL_RECORDS, ids=lambda r: type(r).__name__)
    def test_roundtrip(self, record):
        framed = encode_record(record)
        (length,) = struct.unpack_from("<I", framed, 0)
        assert length == len(framed) - 4
        assert decode_record(framed[4:]) == record

    def test_unknown_kind_decodes_to_none(self):
        assert decode_record(b"\xff" + b"\x00" * 16) is None

    def test_oversized_string_is_truncated_not_fatal(self):
        record = LiveCount(name="x" * 100_000, amount=1.0, ts=0.0)
        decoded = decode_record(encode_record(record)[4:])
        assert decoded.name == "x" * 0xFFFF


@pytest.fixture
def ring():
    r = ShmRing.create("test", capacity=256)
    yield r
    r.close()
    r.unlink()


class TestShmRing:
    def test_push_drain_preserves_order(self, ring):
        records = [LiveCount(name=f"c{i}", amount=float(i), ts=float(i))
                   for i in range(5)]
        for record in records:
            assert ring.push(record)
        assert ring.pushed == 5
        assert ring.drain() == records
        assert ring.pending_bytes() == 0

    def test_wraparound_many_times_over(self, ring):
        # 256-byte payload area, ~25-byte records: cursors lap the
        # capacity dozens of times and records straddle the seam.
        for i in range(500):
            assert ring.push(LiveCount(name="wrap", amount=float(i), ts=0.0))
            if i % 7 == 6:
                drained = ring.drain()
                assert [r.amount for r in drained] == [
                    float(j) for j in range(i - 6, i + 1)
                ]
        assert ring.dropped == 0

    def test_overflow_drops_newest_and_counts(self, ring):
        record = LiveCount(name="fill", amount=1.0, ts=0.0)
        pushed = 0
        while ring.push(record):
            pushed += 1
        assert pushed > 0
        assert ring.dropped == 1
        assert not ring.push(record)
        assert ring.dropped == 2
        assert ring.pushed == pushed
        # Draining frees the space; the writer recovers.
        assert len(ring.drain()) == pushed
        assert ring.push(record)
        assert ring.stats()["dropped"] == 2

    def test_drain_max_records_leaves_the_rest(self, ring):
        for i in range(6):
            ring.push(LiveCount(name="c", amount=float(i), ts=0.0))
        first = ring.drain(max_records=4)
        assert [r.amount for r in first] == [0.0, 1.0, 2.0, 3.0]
        assert [r.amount for r in ring.drain()] == [4.0, 5.0]

    def test_attach_sees_published_records(self, ring):
        other = ShmRing.attach(ring.spec())
        try:
            ring.push(LiveGauge(name="g", value=7.0, ts=1.0))
            drained = other.drain()
            assert drained == [LiveGauge(name="g", value=7.0, ts=1.0)]
        finally:
            other.close()

    def test_attached_ring_may_not_unlink(self, ring):
        other = ShmRing.attach(ring.spec())
        try:
            with pytest.raises(RuntimeError, match="own"):
                other.unlink()
        finally:
            other.close()

    def test_tiny_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            ShmRing.create("bad", capacity=8)


class TestWriterFacades:
    def test_writer_announces_then_streams(self, ring):
        clock = iter([0.0, 1.0, 2.0, 3.0])
        writer = RingWriter(ring, "worker-0", lambda: next(clock),
                            meta_json='{"clock": "shared"}')
        assert writer.enabled
        writer.span("rt.worker-0", "compute", start=0.5)
        writer.count("rt.pushes")
        writer.gauge("rt.staleness.w0", 2.0, ts=9.0)
        records = ring.drain()
        assert records[0] == LiveAnnounce(
            source="worker-0", writer_ts=0.0, meta_json='{"clock": "shared"}'
        )
        assert records[1].end == 1.0  # end stamped from the injected clock
        assert records[2] == LiveCount(name="rt.pushes", amount=1.0, ts=2.0)
        assert records[3].ts == 9.0  # explicit ts skips the clock

    def test_null_writer_is_disabled_and_silent(self):
        assert not NULL_RING_WRITER.enabled
        NULL_RING_WRITER.span("t", "n", start=0.0)
        NULL_RING_WRITER.count("c")
        NULL_RING_WRITER.gauge("g", 1.0)
        NULL_RING_WRITER.sample("s", 1.0)
        NULL_RING_WRITER.instant("t", "n")
        assert NULL_RING_WRITER.now() == 0.0


def _fork_producer(spec_dict, total, done):
    from repro.obs.live import LiveCount, RingSpec, ShmRing

    child = ShmRing.attach(RingSpec.from_dict(spec_dict))
    try:
        import time as _time

        for i in range(total):
            record = LiveCount(name="seq", amount=float(i), ts=float(i))
            while not child.push(record):
                _time.sleep(0.0002)  # reader is behind: wait, don't lose i
        done.put("ok")
    finally:
        child.close()


class TestForkConcurrency:
    def test_concurrent_writer_reader_deliver_every_record_in_order(self):
        # A real child process hammers the ring while the parent drains
        # concurrently; the push-retry loop turns overflow into
        # backpressure so delivery (not just non-corruption) is exact.
        total = 4000
        ring = ShmRing.create("fork-test", capacity=2048)
        done = multiprocessing.Queue()
        proc = multiprocessing.Process(
            target=_fork_producer, args=(ring.spec().to_dict(), total, done)
        )
        proc.start()
        try:
            received = []
            while len(received) < total:
                received.extend(ring.drain())
                if not proc.is_alive() and ring.pending_bytes() == 0:
                    break
            assert done.get(timeout=30) == "ok"
            proc.join(timeout=30)
            received.extend(ring.drain())
            assert [r.amount for r in received] == [
                float(i) for i in range(total)
            ]
        finally:
            proc.join(timeout=30)
            ring.close()
            ring.unlink()


def _feed_iterations(aggregator, worker_id, count, interval, start=0.0):
    track = f"rt.worker-{worker_id}"
    for i in range(count):
        end = start + (i + 1) * interval
        aggregator.apply(
            f"worker-{worker_id}",
            LiveSpan(track=track, name="push", cat="span",
                     start=end - 0.01, end=end),
            recv_ts=end,
        )
        aggregator.apply(
            f"worker-{worker_id}",
            LiveSpan(track=track, name="iteration", cat="iteration",
                     start=end - interval, end=end),
            recv_ts=end,
        )


class TestAggregator:
    def test_rates_phases_and_totals_from_synthetic_stream(self):
        aggregator = TelemetryAggregator(num_workers=2)
        _feed_iterations(aggregator, 0, count=10, interval=0.5)
        _feed_iterations(aggregator, 1, count=10, interval=1.0)
        aggregator.apply(
            "worker-1",
            LiveInstant(track="rt.worker-1", name="abort", cat="abort", ts=9.5),
            recv_ts=9.5,
        )
        aggregator.apply(
            "server", LiveGauge(name="rt.staleness.w0", value=3.0, ts=5.0),
            recv_ts=5.0,
        )
        snapshot = aggregator.snapshot(now=10.0)
        assert snapshot["workers"]["0"]["iterations"] == 10
        assert snapshot["workers"]["0"]["rate_per_s"] == pytest.approx(2.0)
        assert snapshot["workers"]["1"]["rate_per_s"] == pytest.approx(1.0)
        assert snapshot["workers"]["1"]["aborts"] == 1
        assert snapshot["workers"]["0"]["staleness"] == 3.0
        assert snapshot["phases"]["iteration"]["count"] == 20
        assert snapshot["totals"]["iterations"] == 20
        assert snapshot["totals"]["aborts"] == 1
        assert snapshot["detectors"]["straggler"]["num_workers"] == 2
        json.dumps(snapshot)  # must be JSON-ready

    def test_straggler_detector_sees_the_slow_worker(self):
        aggregator = TelemetryAggregator(num_workers=8)
        for worker in range(8):
            interval = 4.0 if worker == 5 else 1.0
            _feed_iterations(aggregator, worker, count=6, interval=interval)
        report = aggregator.snapshot()["detectors"]["straggler"]
        assert report["stragglers"] == [5]

    def test_shared_clock_reports_skew_but_applies_no_offset(self):
        aggregator = TelemetryAggregator(num_workers=1)
        aggregator.apply(
            "worker-0",
            LiveAnnounce(source="worker-0", writer_ts=10.0,
                         meta_json='{"clock": "shared"}'),
            recv_ts=10.5,
        )
        aggregator.apply(
            "worker-0",
            LiveGauge(name="g", value=1.0, ts=11.0), recv_ts=11.25,
        )
        clock = aggregator.snapshot()["clock"]["worker-0"]
        assert clock["mode"] == "shared"
        assert clock["offset_applied_s"] == 0.0
        assert clock["skew_bound_s"] == pytest.approx(0.25)

    def test_independent_clock_offset_shifts_drained_timestamps(self):
        aggregator = TelemetryAggregator(num_workers=1)
        aggregator.apply(
            "peer",
            LiveAnnounce(source="peer", writer_ts=0.0,
                         meta_json='{"clock": "independent"}'),
            recv_ts=100.0,
        )
        aggregator.apply(
            "peer",
            LiveSpan(track="rt.worker-0", name="compute", cat="compute",
                     start=1.0, end=2.0),
            recv_ts=102.5,
        )
        assert aggregator.snapshot()["clock"]["peer"][
            "offset_applied_s"
        ] == pytest.approx(100.0)
        collector = obs.TraceCollector()
        aggregator.drain_to_collector(collector)
        span = next(r for r in collector.records if r.name == "compute")
        assert span.start == pytest.approx(101.0)
        assert span.end == pytest.approx(102.0)

    def test_unretained_aggregator_refuses_to_drain(self):
        aggregator = TelemetryAggregator(num_workers=1, retain_records=False)
        aggregator.apply("w", LiveCount(name="c", amount=1.0, ts=0.0),
                         recv_ts=0.0)
        with pytest.raises(RuntimeError, match="retain_records"):
            aggregator.drain_to_collector(obs.TraceCollector())

    def test_duplicate_ring_source_rejected(self, ring):
        aggregator = TelemetryAggregator(num_workers=1)
        aggregator.add_ring(ring)
        with pytest.raises(ValueError, match="duplicate"):
            aggregator.add_ring(ring)

    def test_drained_counts_and_samples_become_metrics(self):
        aggregator = TelemetryAggregator(num_workers=1)
        for i in range(4):
            aggregator.apply(
                "server", LiveCount(name="rt.pushes", amount=1.0, ts=float(i)),
                recv_ts=float(i),
            )
            aggregator.apply(
                "server",
                LiveSample(name="rt.msg.push.latency_s", value=0.001 * i,
                           ts=float(i)),
                recv_ts=float(i),
            )
        collector = obs.TraceCollector()
        aggregator.drain_to_collector(collector)
        snapshot = collector.metrics.snapshot()
        assert snapshot["counters"]["rt.pushes"] == 4
        assert snapshot["histograms"]["rt.msg.push.latency_s"]["count"] == 4
        perf = collector.perf.snapshot()
        assert "live.telemetry" in perf["reports"]


class TestSession:
    def test_create_spec_attach_roundtrip(self):
        session = LiveTelemetrySession.create(num_workers=2, ring_bytes=4096)
        try:
            assert session.sources() == [
                "parent", "server", "worker-0", "worker-1"
            ]
            attached = LiveTelemetrySession.attach(session.spec())
            try:
                session.worker_ring(1).push(
                    LiveCount(name="c", amount=1.0, ts=0.0)
                )
                assert len(attached.worker_ring(1).drain()) == 1
                with pytest.raises(RuntimeError, match="creating session"):
                    attached.unlink()
            finally:
                attached.close()
        finally:
            session.close()
            session.unlink()

    def test_attach_rejects_unknown_schema_version(self):
        with pytest.raises(ValueError, match="schema_version"):
            LiveTelemetrySession.attach({"schema_version": 999, "rings": []})

    def test_spec_file_roundtrip(self, tmp_path):
        session = LiveTelemetrySession.create(num_workers=1, ring_bytes=4096)
        try:
            path = tmp_path / "live.json"
            session.write_spec(str(path))
            attached = LiveTelemetrySession.load_spec(str(path))
            try:
                assert attached.num_workers == 1
                assert attached.sources() == session.sources()
            finally:
                attached.close()
        finally:
            session.close()
            session.unlink()

    def test_aggregator_polls_every_ring(self):
        session = LiveTelemetrySession.create(num_workers=1, ring_bytes=4096)
        try:
            session.parent_ring.push(LiveCount(name="p", amount=1.0, ts=0.0))
            session.server_ring.push(LiveCount(name="s", amount=1.0, ts=0.0))
            session.worker_ring(0).push(LiveCount(name="w", amount=1.0, ts=0.0))
            aggregator = session.aggregator()
            assert aggregator.poll(now=1.0) == 3
            assert aggregator.snapshot()["counters"] == {
                "p": 1.0, "s": 1.0, "w": 1.0
            }
        finally:
            session.close()
            session.unlink()

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            LiveTelemetrySession.create(num_workers=0)


class TestDashboard:
    def _snapshot(self):
        aggregator = TelemetryAggregator(num_workers=2)
        _feed_iterations(aggregator, 0, count=5, interval=0.5)
        return aggregator.snapshot(now=3.0)

    def test_render_contains_workers_and_detectors(self):
        text = render_dashboard(self._snapshot())
        assert "workers" in text
        assert "abort_storm" in text
        assert "iteration" in text  # phase table

    def test_run_dashboard_once_returns_final_snapshot(self):
        aggregator = TelemetryAggregator(num_workers=1)
        frames = []
        snapshot = run_dashboard(
            aggregator,
            now_fn=lambda: 1.0,
            sleep_fn=lambda _s: None,
            write=frames.append,
            once=True,
        )
        assert snapshot["schema_version"] == 1
        assert len(frames) == 1

    def test_run_dashboard_json_writes_json_only_at_end(self):
        aggregator = TelemetryAggregator(num_workers=1)
        clock = iter([0.0, 0.0, 0.4, 0.8, 1.2])
        frames = []
        run_dashboard(
            aggregator,
            now_fn=lambda: next(clock),
            sleep_fn=lambda _s: None,
            write=frames.append,
            interval_s=0.4,
            duration_s=1.0,
            as_json=True,
        )
        assert len(frames) == 1
        json.loads(frames[0])


def _build_live_run(session, num_workers=4, seed=0):
    dataset = SyntheticImageDataset(
        num_classes=3, feature_dim=8, num_samples=800,
        class_separation=3.0, warp=False, seed=0,
    )
    partitions = dataset.partition(num_workers, np.random.default_rng(0))
    return MultiprocessRun(
        model=SoftmaxRegressionModel(input_dim=8, num_classes=3),
        partitions=partitions,
        eval_batch=dataset.eval_batch(),
        update_rule=SgdUpdateRule(ConstantSchedule(0.2)),
        compute_model=ComputeTimeModel(mean_time_s=4.0, jitter_sigma=0.1),
        batch_size=32,
        time_scale=0.004,
        tuner=AdaptiveTuner(),
        seed=seed,
        live_session=session,
    )


class TestLiveCaptureEndToEnd:
    def test_live_run_drains_to_analyzable_trace_matching_conventional(self):
        session = LiveTelemetrySession.create(num_workers=4)
        try:
            with obs.collecting() as collector:
                result = _build_live_run(session).run(0.6)
            assert result.total_iterations > 0

            aggregator = session.aggregator()
            import time

            aggregator.poll(time.monotonic())
            snapshot = aggregator.snapshot(time.monotonic())

            # Nothing was lost and every worker reported in.
            assert snapshot["totals"]["dropped_records"] == 0
            for worker_id in range(4):
                entry = snapshot["workers"][str(worker_id)]
                assert entry["iterations"] > 0
                assert entry["rate_per_s"] is not None
            assert snapshot["gauges"]["server"]["rt.queue.request_depth"] >= 0
            assert "pull" in snapshot["phases"]
            assert "push" in snapshot["phases"]

            # The drained capture is a first-class trace-format-v2 file.
            live_collector = obs.TraceCollector()
            drained = aggregator.drain_to_collector(live_collector)
            assert drained == snapshot["totals"]["records"]
            live_trace = obs.to_chrome_trace(live_collector)
            live_analysis = analyze_trace(live_trace)
            assert live_analysis["runs"], "live capture must segment a run"

            # Same-seed parity: the live capture's critical-path total
            # must bracket the same wall window the conventional parent
            # trace recorded, within 1%.  (The parent trace has no
            # worker spans — children can't reach its collector — so
            # its run duration is the comparable total.)
            conventional = analyze_trace(obs.to_chrome_trace(collector))
            live_path = live_analysis["runs"][0]["critical_path"]
            conv_total = conventional["runs"][0]["duration_s"]
            assert live_path["total_s"] == pytest.approx(conv_total, rel=0.01)
            assert live_path["by_category"]["compute"] > 0
        finally:
            session.close()
            session.unlink()

    def test_replay_reproduces_live_aggregation(self):
        session = LiveTelemetrySession.create(num_workers=4)
        try:
            _build_live_run(session).run(0.6)
            aggregator = session.aggregator()
            import time

            aggregator.poll(time.monotonic())
            live_snapshot = aggregator.snapshot()
            collector = obs.TraceCollector()
            aggregator.drain_to_collector(collector)
            trace = obs.to_chrome_trace(collector)
        finally:
            session.close()
            session.unlink()

        assert trace_worker_count(trace) == 4
        replayed = TelemetryAggregator(num_workers=trace_worker_count(trace))
        final = replay_trace(trace, replayed)
        assert final["totals"]["iterations"] == (
            live_snapshot["totals"]["iterations"]
        )
        for worker_id in range(4):
            assert final["workers"][str(worker_id)]["iterations"] == (
                live_snapshot["workers"][str(worker_id)]["iterations"]
            )

    def test_run_rejects_undersized_session(self):
        session = LiveTelemetrySession.create(num_workers=1, ring_bytes=4096)
        try:
            with pytest.raises(ValueError, match="live session"):
                _build_live_run(session, num_workers=2)
        finally:
            session.close()
            session.unlink()
