"""Cross-cutting tests: every update rule behaves inside the store/engine."""

import numpy as np
import pytest

from repro import AspPolicy, ClusterSpec, SpecSyncPolicy
from repro.ml.optim import (
    AdaGradUpdateRule,
    ConstantSchedule,
    SgdUpdateRule,
    StalenessAwareUpdateRule,
    StepDecaySchedule,
)
from repro.workloads import tiny_workload

RULES = {
    "sgd": lambda: SgdUpdateRule(ConstantSchedule(0.2)),
    "sgd+momentum": lambda: SgdUpdateRule(ConstantSchedule(0.05), momentum=0.6),
    "sgd+decay": lambda: SgdUpdateRule(StepDecaySchedule(0.2, (100,), 0.5)),
    "sgd+clip": lambda: SgdUpdateRule(ConstantSchedule(0.2), clip_norm=1.0),
    "adagrad": lambda: AdaGradUpdateRule(ConstantSchedule(0.3)),
    "staleness-aware": lambda: StalenessAwareUpdateRule(
        ConstantSchedule(0.2), reference_staleness=4
    ),
}


@pytest.mark.parametrize("rule_name", sorted(RULES), ids=sorted(RULES))
class TestRulesInEngine:
    def run_with(self, rule_name, policy=None):
        workload = tiny_workload().with_overrides(
            update_rule_factory=RULES[rule_name]
        )
        return workload.run(
            ClusterSpec.homogeneous(4), policy or AspPolicy(),
            seed=2, horizon_s=60.0,
        )

    def test_training_converges(self, rule_name):
        result = self.run_with(rule_name)
        assert result.final_loss < result.curve[0].loss
        assert result.final_loss < 0.6

    def test_specsync_composes_with_rule(self, rule_name):
        result = self.run_with(rule_name, SpecSyncPolicy.adaptive())
        assert result.total_iterations > 0
        assert result.final_loss < result.curve[0].loss

    def test_learning_rates_recorded_positive(self, rule_name):
        result = self.run_with(rule_name)
        # Every push record carries the rate the server actually used.
        # (Rates are store-side; read them via the store's push records
        # exposed through the traces' staleness/push bookkeeping.)
        assert all(p.staleness >= 0 for p in result.traces.pushes)


class TestRuleStateIsolation:
    def test_factories_do_not_share_state(self):
        """A momentum/adagrad rule keeps per-run state; two runs built from
        the same factory must not interfere."""
        factory = RULES["adagrad"]
        a, b = factory(), factory()
        from repro.ml.params import ParamSet

        p1 = ParamSet({"w": np.zeros(2)})
        p2 = ParamSet({"w": np.zeros(2)})
        g = ParamSet({"w": np.ones(2)})
        a.apply(p1, g)
        # b's accumulator untouched by a's updates:
        b.apply(p2, g)
        np.testing.assert_allclose(p1["w"], p2["w"])

    def test_workload_runs_do_not_share_rule_state(self):
        workload = tiny_workload().with_overrides(
            update_rule_factory=RULES["sgd+momentum"]
        )
        first = workload.run(ClusterSpec.homogeneous(3), AspPolicy(),
                             seed=5, horizon_s=20.0)
        second = workload.run(ClusterSpec.homogeneous(3), AspPolicy(),
                              seed=5, horizon_s=20.0)
        assert first.final_loss == second.final_loss
