"""Trace conformance: live runs projected onto the protocol model."""

import numpy as np
import pytest

from repro.analysis.model import (
    SCHEMES,
    ShadowTracker,
    SpecSyncModel,
    replay_wire_trace,
    run_des_conformance,
)


class TestDesConformance:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_seeded_run_is_conformant(self, scheme):
        report = run_des_conformance(scheme=scheme, workers=3, seed=0)
        assert report.ok, report.violations
        assert report.transitions_checked > 100
        assert report.events_observed > 0

    def test_specsync_run_exercises_resyncs(self):
        report = run_des_conformance(scheme="specsync", workers=3, seed=0)
        # The default scenario must drive actual speculation traffic —
        # otherwise the shadow never checks the interesting transitions.
        assert report.action_counts.get("resync", 0) > 0
        assert report.action_counts.get("notify", 0) > 0
        assert report.inserted_checks > 0

    def test_report_serializes(self):
        report = run_des_conformance(scheme="asp", workers=2, seed=1, horizon_s=20.0)
        data = report.to_dict()
        assert data["ok"] is True
        assert data["scheme"] == "asp"
        assert data["transitions_checked"] == report.transitions_checked

    def test_mismatched_threshold_is_flagged(self):
        # The engine re-syncs at 0.4*m peer pushes; a model demanding
        # 0.9*m must reject those re-syncs — proving the shadow is not
        # vacuously accepting whatever it observes.
        from repro.analysis.model.conformance import (
            ConformanceReport,
            _build_policy,
            _ProjectionTap,
        )
        from repro.cluster.spec import ClusterSpec
        from repro.events import Simulator
        from repro.workloads import tiny_workload

        policy = _build_policy("specsync", abort_time_s=1.0, abort_rate=0.4,
                               staleness_bound=1)
        engine = tiny_workload().build_engine(
            ClusterSpec.homogeneous(3), policy, seed=0, horizon_s=40.0,
            early_stop=False, max_aborts_per_iteration=1,
        )
        model = SpecSyncModel(num_workers=3, scheme="specsync",
                              max_iterations=None, threshold=3 * 0.9,
                              window_keep=8)
        report = ConformanceReport(scheme="specsync", num_workers=3, seed=0)
        tracker = ShadowTracker(model)
        tap = _ProjectionTap(engine, tracker, report)
        Simulator.install_tap(tap)
        try:
            engine.run()
        finally:
            Simulator.remove_tap(tap)
        assert tracker.violations
        assert "not enabled" in tracker.violations[0]


class TestShadowTracker:
    def test_requires_unbounded_model(self):
        with pytest.raises(ValueError):
            ShadowTracker(SpecSyncModel(num_workers=2, max_iterations=2))

    def test_rejects_out_of_protocol_sequence(self):
        tracker = ShadowTracker(
            SpecSyncModel(num_workers=2, max_iterations=None, window_keep=4)
        )
        # A push before any pull was served is not a model transition.
        error = tracker.observe("push", 0)
        assert error is not None and "not enabled" in error
        assert tracker.violations

    def test_accepts_the_healthy_cycle(self):
        tracker = ShadowTracker(
            SpecSyncModel(num_workers=2, max_iterations=None, window_keep=4)
        )
        for kind in ("pull_request", "pull_response", "compute_done",
                     "push", "push_ack"):
            assert tracker.observe(kind, 0) is None, kind
        assert tracker.steps == 5
        assert tracker.state.workers[0].iteration == 1

    def test_stops_after_violation_budget(self):
        tracker = ShadowTracker(
            SpecSyncModel(num_workers=2, max_iterations=None, window_keep=4)
        )
        for _ in range(5):
            tracker.observe("push", 0)
        assert tracker.broken
        assert len(tracker.violations) == 3  # capped, then ignored


class TestWireTraceReplay:
    def test_clean_trace_passes(self):
        trace = [("pull", 0), ("pull", 1), ("push", 0), ("push", 1),
                 ("pull", 0), ("push", 0)]
        assert replay_wire_trace(trace, num_workers=2) == []

    def test_abort_repull_within_budget_passes(self):
        trace = [("pull", 0), ("pull", 0), ("push", 0)]
        assert replay_wire_trace(trace, num_workers=1, abort_budget=1) == []

    def test_repull_beyond_budget_flagged(self):
        trace = [("pull", 0), ("pull", 0), ("pull", 0)]
        violations = replay_wire_trace(trace, num_workers=1, abort_budget=1)
        assert violations and "abort budget" in violations[0]

    def test_push_without_pull_flagged(self):
        violations = replay_wire_trace([("push", 0)], num_workers=1)
        assert violations and "without a served pull" in violations[0]

    def test_unknown_worker_and_tag_flagged(self):
        violations = replay_wire_trace(
            [("pull", 7), ("sync", 0)], num_workers=2
        )
        assert len(violations) == 2


class TestMultiprocessConformance:
    def test_recorded_wire_trace_replays_through_model(self):
        from repro.cluster.compute import ComputeTimeModel
        from repro.core.hyperparams import SpecSyncHyperparams
        from repro.core.tuning import FixedTuner
        from repro.ml import SoftmaxRegressionModel, SyntheticImageDataset
        from repro.ml.optim import ConstantSchedule, SgdUpdateRule
        from repro.runtime import MultiprocessRun

        dataset = SyntheticImageDataset(
            num_classes=3, feature_dim=8, num_samples=800,
            class_separation=3.0, warp=False, seed=0,
        )
        run = MultiprocessRun(
            model=SoftmaxRegressionModel(input_dim=8, num_classes=3),
            partitions=dataset.partition(4, np.random.default_rng(0)),
            eval_batch=dataset.eval_batch(),
            update_rule=SgdUpdateRule(ConstantSchedule(0.2)),
            compute_model=ComputeTimeModel(mean_time_s=4.0, jitter_sigma=0.1),
            batch_size=32,
            time_scale=0.004,
            tuner=FixedTuner(
                SpecSyncHyperparams(abort_time_s=0.008, abort_rate=0.3)
            ),
            seed=0,
            record_wire_trace=True,
        )
        result = run.run(0.7)
        assert result.wire_trace is not None
        assert len(result.wire_trace) > 0
        violations = replay_wire_trace(
            result.wire_trace, num_workers=4,
            abort_budget=run.max_aborts_per_iteration,
        )
        assert violations == [], violations
        # A corrupted tail (push with no pull) must be rejected.
        corrupted = list(result.wire_trace) + [("push", 0), ("push", 0)]
        assert replay_wire_trace(corrupted, num_workers=4)

    def test_trace_off_by_default(self):
        from repro.runtime.multiprocess import MultiprocessRunResult

        # The field defaults to None so existing result consumers are
        # unaffected when recording is off.
        assert MultiprocessRunResult.__dataclass_fields__[
            "wire_trace"
        ].default is None
