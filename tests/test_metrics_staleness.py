"""Tests for staleness statistics."""

import pytest

from repro.metrics.staleness import (
    StalenessAnalysis,
    StalenessStats,
    compare_staleness,
)
from repro.metrics.traces import PushEvent, TraceRecorder


def make_traces(staleness_by_worker):
    """staleness_by_worker: {worker_id: [staleness, ...]}"""
    traces = TraceRecorder()
    time = 0.0
    version = 0
    for worker, values in staleness_by_worker.items():
        for value in values:
            time += 1.0
            version += 1
            traces.record_push(
                PushEvent(
                    time=time, worker_id=worker, version_after=version,
                    snapshot_version=max(version - 1 - value, 0),
                    staleness=value, iteration=0,
                )
            )
    return traces


class TestStalenessStats:
    def test_from_values(self):
        stats = StalenessStats.from_values([0, 1, 2, 3, 4])
        assert stats.count == 5
        assert stats.mean == 2.0
        assert stats.median == 2.0
        assert stats.max_value == 4

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            StalenessStats.from_values([])

    def test_quantile_ordering(self):
        stats = StalenessStats.from_values(list(range(100)))
        assert stats.median <= stats.p95 <= stats.p99 <= stats.max_value


class TestStalenessAnalysis:
    def test_overall_and_per_worker(self):
        traces = make_traces({0: [1, 1, 1], 1: [5, 5, 5]})
        analysis = StalenessAnalysis(traces)
        assert analysis.overall.mean == pytest.approx(3.0)
        per_worker = analysis.per_worker()
        assert per_worker[0].mean == 1.0
        assert per_worker[1].mean == 5.0

    def test_tail_mass(self):
        traces = make_traces({0: [0, 0, 0, 10]})
        analysis = StalenessAnalysis(traces)
        assert analysis.tail_mass(5.0) == pytest.approx(0.25)
        assert analysis.tail_mass(100.0) == 0.0

    def test_tail_threshold_validated(self):
        analysis = StalenessAnalysis(make_traces({0: [1]}))
        with pytest.raises(ValueError):
            analysis.tail_mass(-1.0)

    def test_histogram_counts_sum(self):
        traces = make_traces({0: [0, 1, 2, 3, 4, 5]})
        analysis = StalenessAnalysis(traces)
        histogram = analysis.histogram(num_bins=3)
        assert sum(histogram.values()) == 6

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            StalenessAnalysis(TraceRecorder())


class TestCompare:
    def test_comparison_table(self):
        runs = {
            "asp": make_traces({0: [10, 10, 10, 10]}),
            "specsync": make_traces({0: [2, 2, 2, 2]}),
        }
        text = compare_staleness(runs)
        assert "asp" in text and "specsync" in text
        assert "10.0" in text and "2.0" in text

    def test_threshold_defaults_to_cross_run_mean(self):
        runs = {
            "a": make_traces({0: [0, 0]}),
            "b": make_traces({0: [10, 10]}),
        }
        text = compare_staleness(runs)
        assert "tail > 5" in text
