"""Fixture tests for the concurrency rule pack (repro.runtime only)."""

import textwrap

from repro.analysis import lint_source

ZONE = "repro.runtime.fixture"


def unsuppressed(source, module=ZONE, rule_prefix="CONC-"):
    return [
        f
        for f in lint_source(source, module=module)
        if not f.suppressed and f.rule_id.startswith(rule_prefix)
    ]


# ----------------------------------------------------------------------
# CONC-LOCK-ORDER
# ----------------------------------------------------------------------
OPPOSITE_ORDERS = textwrap.dedent(
    """\
    import threading

    class Pair:
        def __init__(self):
            self._a = threading.Lock()
            self._b = threading.Lock()

        def forward(self):
            with self._a:
                with self._b:
                    pass

        def backward(self):
            with self._b:
                with self._a:
                    pass
    """
)


def test_lock_order_cycle_fires_once():
    findings = [
        f for f in unsuppressed(OPPOSITE_ORDERS) if f.rule_id == "CONC-LOCK-ORDER"
    ]
    assert len(findings) == 1
    assert "cycle" in findings[0].message
    assert "._a" in findings[0].message and "._b" in findings[0].message


def test_consistent_lock_order_is_clean():
    consistent = OPPOSITE_ORDERS.replace(
        "with self._b:\n            with self._a:",
        "with self._a:\n            with self._b:",
    )
    assert [
        f for f in unsuppressed(consistent) if f.rule_id == "CONC-LOCK-ORDER"
    ] == []


def test_self_deadlock_on_plain_lock_fires():
    source = textwrap.dedent(
        """\
        import threading

        class Reenter:
            def __init__(self):
                self._lock = threading.Lock()

            def outer(self):
                with self._lock:
                    with self._lock:
                        pass
        """
    )
    findings = [
        f for f in unsuppressed(source) if f.rule_id == "CONC-LOCK-ORDER"
    ]
    assert len(findings) == 1
    assert "self-deadlock" in findings[0].message


def test_reentrant_lock_reacquire_is_clean():
    source = textwrap.dedent(
        """\
        import threading

        class Reenter:
            def __init__(self):
                self._lock = threading.RLock()

            def outer(self):
                with self._lock:
                    with self._lock:
                        pass
        """
    )
    assert [
        f for f in unsuppressed(source) if f.rule_id == "CONC-LOCK-ORDER"
    ] == []


def test_cycle_through_method_call_is_detected():
    source = textwrap.dedent(
        """\
        import threading

        class Indirect:
            def __init__(self):
                self._a = threading.Lock()
                self._b = threading.Lock()

            def forward(self):
                with self._a:
                    self.helper()

            def helper(self):
                with self._b:
                    pass

            def backward(self):
                with self._b:
                    with self._a:
                        pass
        """
    )
    findings = [
        f for f in unsuppressed(source) if f.rule_id == "CONC-LOCK-ORDER"
    ]
    assert len(findings) == 1


def test_lock_order_outside_runtime_is_exempt():
    assert unsuppressed(OPPOSITE_ORDERS, module="repro.core.fixture") == []


# ----------------------------------------------------------------------
# CONC-THREAD-DAEMON
# ----------------------------------------------------------------------
def test_daemonless_unjoined_thread_fires_once():
    source = textwrap.dedent(
        """\
        import threading

        def launch(fn):
            worker = threading.Thread(target=fn)
            worker.start()
        """
    )
    findings = [
        f for f in unsuppressed(source) if f.rule_id == "CONC-THREAD-DAEMON"
    ]
    assert len(findings) == 1


def test_daemon_kwarg_attribute_or_join_are_clean():
    for body in (
        "    worker = threading.Thread(target=fn, daemon=True)\n    worker.start()",
        "    worker = threading.Thread(target=fn)\n    worker.daemon = True\n    worker.start()",
        "    worker = threading.Thread(target=fn)\n    worker.start()\n    worker.join(timeout=5.0)",
    ):
        source = f"import threading\n\ndef launch(fn):\n{body}\n"
        assert [
            f for f in unsuppressed(source) if f.rule_id == "CONC-THREAD-DAEMON"
        ] == [], body


def test_thread_subclass_without_daemon_fires():
    source = textwrap.dedent(
        """\
        import threading

        class Worker(threading.Thread):
            def __init__(self):
                super().__init__(name="w")
        """
    )
    findings = [
        f for f in unsuppressed(source) if f.rule_id == "CONC-THREAD-DAEMON"
    ]
    assert len(findings) == 1
    assert "Worker" in findings[0].message


def test_thread_subclass_with_daemon_is_clean():
    source = textwrap.dedent(
        """\
        import threading

        class Worker(threading.Thread):
            def __init__(self):
                super().__init__(name="w", daemon=True)
        """
    )
    assert [
        f for f in unsuppressed(source) if f.rule_id == "CONC-THREAD-DAEMON"
    ] == []


# ----------------------------------------------------------------------
# CONC-QUEUE-TIMEOUT
# ----------------------------------------------------------------------
def test_blocking_get_without_timeout_fires_once():
    source = textwrap.dedent(
        """\
        def drain(work_queue):
            return work_queue.get()
        """
    )
    findings = [
        f for f in unsuppressed(source) if f.rule_id == "CONC-QUEUE-TIMEOUT"
    ]
    assert len(findings) == 1


def test_get_with_timeout_or_nonblocking_is_clean():
    source = textwrap.dedent(
        """\
        def drain(work_queue):
            a = work_queue.get(timeout=0.1)
            b = work_queue.get(block=False)
            c = work_queue.get_nowait()
            return a, b, c
        """
    )
    assert [
        f for f in unsuppressed(source) if f.rule_id == "CONC-QUEUE-TIMEOUT"
    ] == []


def test_put_to_bounded_queue_fires_but_local_unbounded_is_exempt():
    bounded = textwrap.dedent(
        """\
        import queue

        def produce(item):
            work_queue = queue.Queue(maxsize=4)
            work_queue.put(item)
        """
    )
    assert len(
        [f for f in unsuppressed(bounded) if f.rule_id == "CONC-QUEUE-TIMEOUT"]
    ) == 1

    unbounded = bounded.replace("queue.Queue(maxsize=4)", "queue.Queue()")
    assert [
        f for f in unsuppressed(unbounded) if f.rule_id == "CONC-QUEUE-TIMEOUT"
    ] == []


def test_queue_rule_outside_runtime_is_exempt():
    source = "def drain(work_queue):\n    return work_queue.get()\n"
    assert unsuppressed(source, module="repro.metrics.fixture") == []


# ----------------------------------------------------------------------
# CONC-UNLOCKED-STATE
# ----------------------------------------------------------------------
def test_guarded_attribute_outside_lock_fires_once():
    source = textwrap.dedent(
        """\
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self._count = 0

            def bump(self):
                self._count += 1
        """
    )
    findings = [
        f for f in unsuppressed(source) if f.rule_id == "CONC-UNLOCKED-STATE"
    ]
    assert len(findings) == 1
    assert "_count" in findings[0].message


def test_guarded_attribute_inside_lock_is_clean():
    source = textwrap.dedent(
        """\
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self._count = 0

            def bump(self):
                with self._lock:
                    self._count += 1
        """
    )
    assert [
        f for f in unsuppressed(source) if f.rule_id == "CONC-UNLOCKED-STATE"
    ] == []


def test_public_attributes_and_lockless_classes_are_exempt():
    source = textwrap.dedent(
        """\
        import threading

        class NoLock:
            def __init__(self):
                self._count = 0

            def bump(self):
                self._count += 1

        class PublicOnly:
            def __init__(self):
                self._lock = threading.Lock()
                self.count = 0

            def bump(self):
                self.count += 1
        """
    )
    assert [
        f for f in unsuppressed(source) if f.rule_id == "CONC-UNLOCKED-STATE"
    ] == []


# ----------------------------------------------------------------------
# The real runtime modules pass the pack (with recorded suppressions)
# ----------------------------------------------------------------------
def test_real_runtime_modules_are_clean():
    import repro.runtime.multiprocess as multiprocess
    import repro.runtime.threaded as threaded
    from repro.analysis import LintEngine
    from repro.analysis.engine import load_module

    modules = [load_module(m.__file__) for m in (threaded, multiprocess)]
    findings = [
        f
        for f in LintEngine().lint_modules(modules)
        if f.rule_id.startswith("CONC-") and not f.suppressed
    ]
    assert findings == []
