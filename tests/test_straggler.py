"""Straggler and abort-storm detectors on synthetic and DES push traces.

Note on sizing: the z-score uses the population sigma *including* the
outlier, so a single extreme straggler among ``n`` workers tops out at
z = sqrt(n - 1).  Tests therefore use 8 workers (max z ≈ 2.65 > the 2.0
default threshold); tiny 3–4 worker clusters mathematically cannot flag
a lone straggler, which is the intended conservatism.
"""

import math

import numpy as np
import pytest

from repro.cluster.scenarios import SlowdownWindow, build_scenario_models
from repro.cluster.spec import ClusterSpec
from repro.obs import AbortStormDetector, StragglerDetector, collecting
from repro.ps.engine import EngineConfig, TrainingEngine
from repro.sync import AspPolicy
from repro.workloads import tiny_workload


def _feed_uniform(detector, worker_ids, interval, pushes=6, skew=None):
    """Feed a synthetic push trace: worker -> pushes at its own cadence."""
    skew = skew or {}
    for worker in worker_ids:
        step = interval * skew.get(worker, 1.0)
        for i in range(pushes):
            detector.record_push(worker, i * step)


class TestStragglerDetector:
    def test_uniform_cadence_flags_nothing(self):
        detector = StragglerDetector(num_workers=8)
        _feed_uniform(detector, range(8), interval=1.0)
        assert detector.stragglers() == []
        assert all(z == 0.0 for z in detector.z_scores().values())

    def test_slow_worker_is_flagged(self):
        detector = StragglerDetector(num_workers=8)
        _feed_uniform(detector, range(8), interval=1.0, skew={5: 4.0})
        assert detector.stragglers() == [5]
        z = detector.z_scores()
        assert z[5] > detector.z_threshold
        assert all(value < 0 for worker, value in z.items() if worker != 5)

    def test_fast_worker_is_not_a_straggler(self):
        # Outliers on the fast side are fine — only slowness is flagged.
        detector = StragglerDetector(num_workers=8)
        _feed_uniform(detector, range(8), interval=1.0, skew={2: 0.1})
        assert 2 not in detector.stragglers()

    def test_needs_min_samples_from_two_workers(self):
        detector = StragglerDetector(num_workers=4, min_samples=3)
        # 3 intervals need 4 pushes; give worker 0 enough, worker 1 not.
        for i in range(4):
            detector.record_push(0, float(i))
        for i in range(3):
            detector.record_push(1, float(i))
        assert detector.z_scores() == {}
        detector.record_push(1, 3.0)
        assert set(detector.z_scores()) == {0, 1}

    def test_first_push_has_no_interval(self):
        detector = StragglerDetector(num_workers=2)
        assert detector.record_push(0, 5.0) is None
        assert detector.record_push(0, 7.5) == pytest.approx(2.5)

    def test_window_forgets_old_intervals(self):
        detector = StragglerDetector(num_workers=8, window=4)
        # Worker 3 was slow long ago, then recovered to the common cadence:
        # once the window rolls over, it must no longer be flagged.
        _feed_uniform(detector, range(8), interval=1.0, skew={3: 4.0})
        last = 5 * 4.0  # worker 3's last push timestamp from the feed
        for i in range(1, 6):
            detector.record_push(3, last + i * 1.0)
        assert detector.stragglers() == []

    def test_report_is_json_ready_and_sorted(self):
        import json

        detector = StragglerDetector(num_workers=8)
        _feed_uniform(detector, range(8), interval=1.0, skew={5: 4.0})
        report = detector.report()
        assert report["stragglers"] == [5]
        assert list(report["z_scores"]) == sorted(report["z_scores"])
        json.dumps(report)  # must not raise

    def test_validation(self):
        with pytest.raises(ValueError):
            StragglerDetector(num_workers=0)
        with pytest.raises(ValueError):
            StragglerDetector(num_workers=2, min_samples=1)


class TestAbortStormDetector:
    def test_healthy_mix_is_calm(self):
        detector = AbortStormDetector()
        for i in range(20):
            detector.record_push(float(i))
            if i % 5 == 0:
                detector.record_abort(i + 0.5)
        assert not detector.storming()
        assert detector.storm_count == 0

    def test_abort_burst_raises_the_flag_once(self):
        detector = AbortStormDetector(window=8, min_aborts=4)
        for i in range(8):
            detector.record_push(float(i))
        for i in range(6):
            detector.record_abort(8.0 + i)
        assert detector.storming()
        assert detector.storm_count == 1
        # Recovery: pushes wash the aborts out of the window...
        for i in range(8):
            detector.record_push(20.0 + i)
        assert not detector.storming()
        # ...and a second burst counts as a second storm.
        for i in range(6):
            detector.record_abort(40.0 + i)
        assert detector.storm_count == 2

    def test_few_aborts_never_storm_regardless_of_ratio(self):
        detector = AbortStormDetector(window=8, min_aborts=4)
        detector.record_abort(0.0)
        detector.record_abort(1.0)
        assert detector.abort_ratio() == 1.0
        assert not detector.storming()

    def test_validation(self):
        with pytest.raises(ValueError):
            AbortStormDetector(window=1)
        with pytest.raises(ValueError):
            AbortStormDetector(ratio_threshold=0.0)


class TestEngineIntegration:
    def _run_scenario_engine(self, events):
        """Seeded tiny-workload DES run with scripted slowdowns, profiled."""
        workload = tiny_workload()
        cluster = ClusterSpec.homogeneous(8)
        dataset = workload.dataset_factory(0)
        partitions = dataset.partition(8, np.random.default_rng(0))
        models = build_scenario_models(cluster, workload.base_compute, events)
        with collecting() as collector:
            engine = TrainingEngine(
                model=workload.model_factory(),
                partitions=partitions,
                eval_batch=dataset.eval_batch(),
                update_rule=workload.update_rule_factory(),
                policy=AspPolicy(),
                cluster=cluster,
                base_compute_model=workload.base_compute,
                config=EngineConfig(
                    batch_size=16, horizon_s=60.0, eval_interval_s=5.0,
                    param_wire_bytes=1e5,
                ),
                seed=0,
                compute_models=models,
                workload_name="tiny",
            )
            engine.run()
        return collector.perf.snapshot()

    def test_scenario_slowdown_is_flagged_in_engine_report(self):
        perf = self._run_scenario_engine(
            {2: [SlowdownWindow(0.0, 60.0, factor=6.0)]}
        )
        report = perf["reports"]["engine:tiny:asp:seed0"]
        assert report["straggler"]["stragglers"] == [2]
        assert not report["abort_storm"]["storming"]

    def test_homogeneous_run_flags_nothing(self):
        perf = self._run_scenario_engine({})
        report = perf["reports"]["engine:tiny:asp:seed0"]
        assert report["straggler"]["stragglers"] == []


class TestZeroVarianceGuard:
    """The z-score guard on (near-)zero population spread.

    Dividing by a denormal sigma would manufacture huge z-scores (or
    NaN at exactly zero) from noise far below timer resolution; the
    guard is *relative* (``sigma <= |mu| * 1e-9``) so genuine spread at
    any time scale still scores.
    """

    def test_true_negative_exactly_constant_intervals(self):
        detector = StragglerDetector(num_workers=8)
        _feed_uniform(detector, range(8), interval=1.0)
        z = detector.z_scores()
        assert z, "population must be scored, not empty"
        assert all(value == 0.0 for value in z.values())
        assert not any(math.isnan(value) for value in z.values())
        assert detector.stragglers() == []

    def test_true_negative_float_rounding_jitter(self):
        # Per-worker cadences differing by 1 ulp: sigma is denormal but
        # nonzero, the case a plain ``sigma == 0`` check misses.
        detector = StragglerDetector(num_workers=8)
        for worker in range(8):
            step = 1.0 + worker * 1e-16
            ts = 0.0
            for _ in range(6):
                ts += step
                detector.record_push(worker, ts)
        z = detector.z_scores()
        assert z and all(value == 0.0 for value in z.values())
        assert detector.stragglers() == []

    def test_true_positive_survives_at_microsecond_scale(self):
        # Real spread far above the relative guard must still flag, even
        # when the absolute sigma is tiny because intervals are tiny.
        detector = StragglerDetector(num_workers=8)
        _feed_uniform(detector, range(8), interval=1e-6, skew={5: 4.0})
        assert detector.stragglers() == [5]
        assert detector.z_scores()[5] > detector.z_threshold
