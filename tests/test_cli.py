"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import EXPERIMENTS, WORKLOADS, build_parser, main


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.workload == "mf"
        assert args.scheme == "adaptive"
        assert args.workers == 40

    def test_compare_schemes(self):
        args = build_parser().parse_args(
            ["compare", "--schemes", "original", "adaptive", "bsp"]
        )
        assert args.schemes == ["original", "adaptive", "bsp"]

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "fig8"])
        assert args.name == "fig8"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_registry_completeness(self):
        # Every paper table/figure has a CLI entry.
        for name in ("table1", "table2") + tuple(
            f"fig{i}" for i in (3, 5, 8, 9, 10, 11, 12, 13)
        ):
            assert name in EXPERIMENTS
        assert set(WORKLOADS) == {"mf", "cifar10", "imagenet", "tiny"}


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mf" in out and "adaptive" in out and "fig8" in out

    def test_run_tiny(self, capsys):
        code = main(
            ["run", "--workload", "tiny", "--workers", "3", "--seed", "1",
             "--scheme", "original", "--horizon", "15"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "asp" in out

    def test_run_writes_json_and_traces(self, tmp_path, capsys):
        json_path = tmp_path / "run.json"
        trace_path = tmp_path / "trace.jsonl"
        code = main(
            ["run", "--workload", "tiny", "--workers", "3", "--horizon", "15",
             "--json", str(json_path), "--traces", str(trace_path)]
        )
        assert code == 0
        payload = json.loads(json_path.read_text())
        assert payload["workload"] == "tiny"
        lines = trace_path.read_text().splitlines()
        assert lines and json.loads(lines[0])["event"] in {"pull", "push", "abort"}

    def test_run_unknown_scheme_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "--workload", "tiny", "--scheme", "nope",
                  "--workers", "2", "--horizon", "5"])

    def test_compare_tiny(self, capsys):
        code = main(
            ["compare", "--workload", "tiny", "--workers", "3",
             "--horizon", "20", "--schemes", "original", "adaptive",
             "--plot"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "specsync-adaptive" in out
        assert "= original" in out  # plot legend uses scheme keys

    def test_compare_heterogeneous_cluster(self, capsys):
        code = main(
            ["compare", "--workload", "tiny", "--workers", "4",
             "--heterogeneous", "--horizon", "10", "--schemes", "original"]
        )
        assert code == 0
        assert "m3.xlarge" in capsys.readouterr().out


def _write_runtime_module(tmp_path, source):
    """A fake ``repro.runtime`` package so runtime-zone rules fire."""
    package = tmp_path / "repro" / "runtime"
    package.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text("")
    (package / "__init__.py").write_text("")
    (package / "mod.py").write_text(source)
    return str(package / "mod.py")


_WARNING_ONLY = '''
import threading

class Box:
    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0

    def peek(self):
        return self._value
'''

_WITH_ERROR = '''
import threading

class Box:
    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0

    def get(self):
        with self._lock:
            with self._lock:
                return self._value
'''


class TestLintFailOn:
    def test_warning_fails_by_default(self, tmp_path, capsys):
        path = _write_runtime_module(tmp_path, _WARNING_ONLY)
        assert main(["lint", path]) == 1
        assert "CONC-UNLOCKED-STATE" in capsys.readouterr().out

    def test_fail_on_error_lets_warnings_pass(self, tmp_path, capsys):
        path = _write_runtime_module(tmp_path, _WARNING_ONLY)
        assert main(["lint", "--fail-on", "error", path]) == 0
        # The warning is still reported, just not fatal.
        assert "CONC-UNLOCKED-STATE" in capsys.readouterr().out

    def test_fail_on_error_still_fails_on_errors(self, tmp_path, capsys):
        path = _write_runtime_module(tmp_path, _WITH_ERROR)
        assert main(["lint", "--fail-on", "error", path]) == 1
        assert "CONC-LOCK-ORDER" in capsys.readouterr().out

    def test_clean_tree_passes_both_thresholds(self, capsys):
        import repro as repro_pkg
        import os

        pkg_dir = os.path.dirname(os.path.abspath(repro_pkg.__file__))
        assert main(["lint", pkg_dir]) == 0
        capsys.readouterr()
        assert main(["lint", "--fail-on", "error", pkg_dir]) == 0

    def test_fail_on_never_always_passes(self, tmp_path, capsys):
        path = _write_runtime_module(tmp_path, _WITH_ERROR)
        assert main(["lint", "--fail-on", "never", path]) == 0
        # Findings are still reported; only the exit code is waived.
        assert "CONC-LOCK-ORDER" in capsys.readouterr().out


class TestSanitizeCommand:
    def test_clean_run_exits_zero(self, capsys):
        code = main(
            ["sanitize", "--duration", "0.2", "--workers", "2", "--no-replay"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "lock events" in out
        assert "clean" in out

    def test_json_report_written(self, tmp_path, capsys):
        report_path = tmp_path / "sanitize.json"
        code = main(
            ["sanitize", "--duration", "0.2", "--workers", "2", "--no-replay",
             "--format", "json", "--output", str(report_path)]
        )
        assert code == 0
        payload = json.loads(report_path.read_text())
        assert payload["backend"] == "threaded"
        assert payload["findings"] == []
        # stdout carries the same JSON document
        assert json.loads(capsys.readouterr().out)["backend"] == "threaded"

    def test_findings_gate_exit_code(self, monkeypatch, capsys):
        from repro import cli
        from repro.analysis import Finding, Severity
        from repro.analysis.dynamic import sanitize as sanitize_module

        def fake_run_sanitizers(**kwargs):
            report = sanitize_module.SanitizeReport(
                backend="threaded", duration_s=0.1, workers=1, seed=0
            )
            report.findings.append(
                Finding(
                    rule_id="DYN-LOCK-CYCLE",
                    severity=Severity.ERROR,
                    path="x.py",
                    line=1,
                    message="planted",
                )
            )
            return report

        monkeypatch.setattr(
            "repro.analysis.dynamic.run_sanitizers", fake_run_sanitizers
        )
        assert cli.main(["sanitize", "--no-replay"]) == 1
        assert "DYN-LOCK-CYCLE" in capsys.readouterr().out

    def test_backend_choice_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sanitize", "--backend", "smoke-signal"])


class TestModelcheckCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["modelcheck"])
        assert args.scheme == "all"
        assert args.workers == 3
        assert args.max_iterations == 2
        assert args.fail_on == "warning"
        assert args.mutants is False
        assert args.conformance is False

    def test_bsp_two_workers_passes(self, capsys):
        assert main(["modelcheck", "--scheme", "bsp", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "modelcheck: PASS" in out
        assert "bsp" in out

    def test_json_report_written(self, tmp_path, capsys):
        report_path = tmp_path / "modelcheck.json"
        code = main(
            ["modelcheck", "--scheme", "bsp", "--workers", "2",
             "--format", "json", "--output", str(report_path)]
        )
        assert code == 0
        payload = json.loads(report_path.read_text())
        assert payload["ok"] is True
        assert payload["schemes"][0]["scheme"] == "bsp"
        # stdout carries the same JSON document
        assert json.loads(capsys.readouterr().out)["ok"] is True

    def test_truncation_fails_the_gate(self, capsys):
        code = main(
            ["modelcheck", "--scheme", "specsync", "--workers", "2",
             "--max-states", "50"]
        )
        assert code == 1
        assert "MODEL-TRUNCATED" in capsys.readouterr().out

    def test_fail_on_never_waives_the_gate(self, capsys):
        code = main(
            ["modelcheck", "--scheme", "specsync", "--workers", "2",
             "--max-states", "50", "--fail-on", "never"]
        )
        assert code == 0

    def test_scheme_choice_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["modelcheck", "--scheme", "psync"])


class TestExperimentCommand:
    def test_experiment_dispatch_uses_registry(self, capsys, monkeypatch):
        """The experiment subcommand resolves from EXPERIMENTS and prints
        the driver's render() output (stubbed for speed)."""
        from repro import cli

        class StubResult:
            def render(self):
                return "STUB-RENDERED-TABLE"

        calls = {}

        def stub_driver(scale, seed=3):
            calls["scale"] = scale
            calls["seed"] = seed
            return StubResult()

        monkeypatch.setitem(cli.EXPERIMENTS, "table1", stub_driver)
        code = main(["experiment", "table1", "--scale", "smoke", "--seed", "9"])
        assert code == 0
        assert "STUB-RENDERED-TABLE" in capsys.readouterr().out
        assert calls["seed"] == 9
        from repro.experiments import ExperimentScale

        assert calls["scale"] is ExperimentScale.SMOKE

    def test_all_registered_experiments_are_callable(self):
        for name, driver in EXPERIMENTS.items():
            assert callable(driver), name


class TestTraceCapture:
    """--trace capture on run, and the `repro trace` summary command."""

    def test_run_trace_writes_valid_chrome_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        code = main(
            ["run", "--workload", "tiny", "--workers", "3", "--seed", "3",
             "--scheme", "adaptive", "--horizon", "30",
             "--trace", str(trace_path)]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "trace events written" in err

        trace = json.loads(trace_path.read_text(encoding="utf-8"))
        assert trace["otherData"]["workload"] == "tiny"
        assert trace["otherData"]["scheme"] == "adaptive"
        phases = {e["ph"] for e in trace["traceEvents"]}
        assert {"M", "X", "i"} <= phases
        # SpecSync on the tiny workload aborts: causality arrows exist.
        assert "s" in phases and "f" in phases

    def test_trace_command_summarizes(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        assert main(
            ["run", "--workload", "tiny", "--workers", "3", "--seed", "3",
             "--scheme", "adaptive", "--horizon", "30",
             "--trace", str(trace_path)]
        ) == 0
        capsys.readouterr()
        assert main(["trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "trace events on" in out
        assert "abort causality" in out
        assert "iteration" in out

    def test_trace_command_json_format(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        assert main(
            ["run", "--workload", "tiny", "--workers", "2", "--seed", "1",
             "--scheme", "original", "--horizon", "10",
             "--trace", str(trace_path)]
        ) == 0
        capsys.readouterr()
        assert main(["trace", str(trace_path), "--format", "json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["total_events"] > 0
        assert "iteration" in summary["spans"]
        assert summary["metadata"]["workload"] == "tiny"

    def test_trace_command_rejects_missing_file(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope.json")]) == 2
        assert "error" in capsys.readouterr().err

    def test_trace_command_accepts_empty_trace(self, tmp_path, capsys):
        empty = tmp_path / "empty.json"
        empty.write_text('{"traceEvents": []}', encoding="utf-8")
        assert main(["trace", str(empty)]) == 0
        out = capsys.readouterr().out
        assert "trace file is empty" in out

    def test_trace_command_accepts_metrics_only_trace(self, tmp_path, capsys):
        metrics_only = tmp_path / "metrics.json"
        metrics_only.write_text(json.dumps({
            "traceEvents": [],
            "metrics": {
                "counters": {"sim.events_fired": 42},
                "gauges": {},
                "histograms": {},
            },
        }), encoding="utf-8")
        assert main(["trace", str(metrics_only)]) == 0
        out = capsys.readouterr().out
        assert "metrics-only capture" in out
        assert "sim.events_fired" in out

    def test_perf_report_renders_dashboard(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        assert main(
            ["run", "--workload", "tiny", "--workers", "3", "--seed", "3",
             "--scheme", "adaptive", "--horizon", "30",
             "--trace", str(trace_path)]
        ) == 0
        capsys.readouterr()
        assert main(["perf", "report", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "phase latency percentiles" in out
        assert "engine.compute" in out
        assert "anomaly detectors" in out

    def test_perf_report_json_format(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        assert main(
            ["run", "--workload", "tiny", "--workers", "2", "--seed", "1",
             "--scheme", "adaptive", "--horizon", "10",
             "--trace", str(trace_path)]
        ) == 0
        capsys.readouterr()
        assert main(["perf", "report", str(trace_path),
                     "--format", "json"]) == 0
        perf = json.loads(capsys.readouterr().out)
        assert perf["schema_version"] == 1
        assert "engine.iteration" in perf["phases"]

    def test_perf_report_missing_file(self, tmp_path, capsys):
        assert main(["perf", "report", str(tmp_path / "nope.json")]) == 2
        assert "error" in capsys.readouterr().err

    def test_trace_command_rejects_non_trace_json(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"not": "a trace"}', encoding="utf-8")
        assert main(["trace", str(bogus)]) == 2
        assert "traceEvents" in capsys.readouterr().err

    def test_trace_json_reports_flow_accounting_and_aborts(
        self, tmp_path, capsys
    ):
        trace_path = tmp_path / "trace.json"
        assert main(
            ["run", "--workload", "tiny", "--workers", "3", "--seed", "3",
             "--scheme", "adaptive", "--horizon", "30",
             "--trace", str(trace_path)]
        ) == 0
        capsys.readouterr()
        assert main(["trace", str(trace_path), "--format", "json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        accounting = summary["flow_accounting"]
        assert accounting["emitted"] > 0
        assert accounting["closed"] + accounting["discarded"] <= (
            accounting["emitted"]
        )
        aborts = summary["aborts_by_track"]
        assert aborts and all(t.startswith("worker-") for t in aborts)
        assert sum(aborts.values()) == summary["instants"]["abort"]


class TestAnalyzeCommand:
    """`repro analyze` — the causal analytics entry point."""

    @pytest.fixture(scope="class")
    def trace_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("analyze") / "trace.json"
        assert main(
            ["run", "--workload", "tiny", "--workers", "3", "--seed", "3",
             "--scheme", "adaptive", "--horizon", "30",
             "--trace", str(path)]
        ) == 0
        return path

    def test_text_report(self, trace_path, capsys):
        capsys.readouterr()
        assert main(["analyze", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "critical-path attribution" in out
        assert "speculation ledger" in out
        assert "staleness of applied pushes" in out

    def test_json_output_and_bench_bridge(self, trace_path, tmp_path, capsys):
        out_path = tmp_path / "analysis.json"
        bench_path = tmp_path / "BENCH_analysis.json"
        capsys.readouterr()
        assert main(
            ["analyze", str(trace_path), "--format", "json",
             "--output", str(out_path), "--bench-output", str(bench_path)]
        ) == 0
        printed = json.loads(capsys.readouterr().out)
        saved = json.loads(out_path.read_text(encoding="utf-8"))
        assert printed == saved
        assert saved["schema_version"] == 1
        (run,) = saved["runs"]
        total = sum(run["critical_path"]["by_category"].values())
        assert abs(total - run["critical_path"]["total_s"]) <= (
            0.01 * run["critical_path"]["total_s"]
        )
        # the bench file round-trips through the shared regression gate
        assert main(
            ["bench", "--compare", str(bench_path), str(bench_path)]
        ) == 0

    def test_compare_accepts_saved_analysis(self, trace_path, tmp_path, capsys):
        out_path = tmp_path / "analysis.json"
        assert main(
            ["analyze", str(trace_path), "--format", "json",
             "--output", str(out_path)]
        ) == 0
        capsys.readouterr()
        assert main(
            ["analyze", str(trace_path), "--compare", str(out_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "critical-path attribution deltas" in out
        assert "+0" in out

    def test_parse_error_trips_the_gate(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text("not json", encoding="utf-8")
        assert main(["analyze", str(bogus)]) == 1
        assert "TRACE-PARSE" in capsys.readouterr().out

    def test_schema_error_trips_the_gate(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"not": "a trace"}', encoding="utf-8")
        assert main(["analyze", str(bogus)]) == 1
        assert "TRACE-SCHEMA" in capsys.readouterr().out

    def test_fail_on_never_reports_without_failing(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text("not json", encoding="utf-8")
        assert main(["analyze", str(bogus), "--fail-on", "never"]) == 0
        assert "TRACE-PARSE" in capsys.readouterr().out

    def test_verbose_flag_logs_progress(self, capsys):
        import logging

        root = logging.getLogger("repro")
        before = list(root.handlers)
        try:
            assert main(
                ["-v", "run", "--workload", "tiny", "--workers", "2",
                 "--seed", "1", "--scheme", "original", "--horizon", "10"]
            ) == 0
            err = capsys.readouterr().err
            assert "repro.engine" in err
            assert "run start" in err
        finally:
            for handler in list(root.handlers):
                if handler not in before:
                    root.removeHandler(handler)


class TestTopCommand:
    def _live_trace(self, tmp_path):
        """A drained live capture via the smoke path (also exercises it)."""
        trace_path = tmp_path / "live_trace.json"
        code = main([
            "top", "--smoke", "--once", "--json",
            "--duration", "0.4", "--drain", str(trace_path),
        ])
        assert code == 0
        return trace_path

    def test_parser_requires_exactly_one_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["top"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["top", "--smoke", "--replay", "trace.json"]
            )
        args = build_parser().parse_args(["top", "--smoke", "--once"])
        assert args.smoke and args.once and not args.json

    def test_smoke_once_json_reports_sane_gauges(self, tmp_path, capsys):
        trace_path = self._live_trace(tmp_path)
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["schema_version"] == 1
        assert snapshot["totals"]["dropped_records"] == 0
        assert snapshot["totals"]["iterations"] > 0
        for entry in snapshot["workers"].values():
            assert entry["iterations"] > 0
        assert any(
            "rt.queue.request_depth" in gauges
            for gauges in snapshot["gauges"].values()
        )
        assert "straggler" in snapshot["detectors"]
        # The drained artifact is a real trace-format-v2 file.
        trace = json.loads(trace_path.read_text())
        assert "traceEvents" in trace

    def test_drained_capture_passes_analyze_gate(self, tmp_path, capsys):
        trace_path = self._live_trace(tmp_path)
        capsys.readouterr()
        code = main([
            "analyze", str(trace_path), "--format", "json",
            "--fail-on", "warning",
        ])
        assert code == 0
        analysis = json.loads(capsys.readouterr().out)
        assert analysis["runs"]

    def test_replay_once_renders_dashboard(self, tmp_path, capsys):
        trace_path = self._live_trace(tmp_path)
        capsys.readouterr()
        code = main(["top", "--replay", str(trace_path), "--once"])
        assert code == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "workers" in out

    def test_replay_json_matches_live_totals(self, tmp_path, capsys):
        trace_path = self._live_trace(tmp_path)
        live_snapshot = json.loads(capsys.readouterr().out)
        code = main(["top", "--replay", str(trace_path), "--once", "--json"])
        assert code == 0
        replayed = json.loads(capsys.readouterr().out)
        assert replayed["totals"]["iterations"] == (
            live_snapshot["totals"]["iterations"]
        )

    def test_replay_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["top", "--replay", str(bad), "--once"]) == 2
        not_a_trace = tmp_path / "plain.json"
        not_a_trace.write_text("{\"foo\": 1}")
        assert main(["top", "--replay", str(not_a_trace), "--once"]) == 2

    def test_attach_rejects_missing_spec(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["top", "--attach", str(missing), "--once"]) == 2

    def test_attach_reads_a_written_spec(self, tmp_path, capsys):
        from repro.obs.live import LiveCount, LiveTelemetrySession

        session = LiveTelemetrySession.create(num_workers=1, ring_bytes=4096)
        try:
            session.worker_ring(0).push(
                LiveCount(name="rt.pushes", amount=2.0, ts=0.0)
            )
            spec_path = tmp_path / "live.json"
            session.write_spec(str(spec_path))
            code = main([
                "top", "--attach", str(spec_path), "--once", "--json",
            ])
            assert code == 0
            snapshot = json.loads(capsys.readouterr().out)
            assert snapshot["counters"]["rt.pushes"] == 2.0
        finally:
            session.close()
            session.unlink()
