"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import EXPERIMENTS, WORKLOADS, build_parser, main


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.workload == "mf"
        assert args.scheme == "adaptive"
        assert args.workers == 40

    def test_compare_schemes(self):
        args = build_parser().parse_args(
            ["compare", "--schemes", "original", "adaptive", "bsp"]
        )
        assert args.schemes == ["original", "adaptive", "bsp"]

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "fig8"])
        assert args.name == "fig8"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_registry_completeness(self):
        # Every paper table/figure has a CLI entry.
        for name in ("table1", "table2") + tuple(
            f"fig{i}" for i in (3, 5, 8, 9, 10, 11, 12, 13)
        ):
            assert name in EXPERIMENTS
        assert set(WORKLOADS) == {"mf", "cifar10", "imagenet", "tiny"}


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mf" in out and "adaptive" in out and "fig8" in out

    def test_run_tiny(self, capsys):
        code = main(
            ["run", "--workload", "tiny", "--workers", "3", "--seed", "1",
             "--scheme", "original", "--horizon", "15"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "asp" in out

    def test_run_writes_json_and_traces(self, tmp_path, capsys):
        json_path = tmp_path / "run.json"
        trace_path = tmp_path / "trace.jsonl"
        code = main(
            ["run", "--workload", "tiny", "--workers", "3", "--horizon", "15",
             "--json", str(json_path), "--traces", str(trace_path)]
        )
        assert code == 0
        payload = json.loads(json_path.read_text())
        assert payload["workload"] == "tiny"
        lines = trace_path.read_text().splitlines()
        assert lines and json.loads(lines[0])["event"] in {"pull", "push", "abort"}

    def test_run_unknown_scheme_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "--workload", "tiny", "--scheme", "nope",
                  "--workers", "2", "--horizon", "5"])

    def test_compare_tiny(self, capsys):
        code = main(
            ["compare", "--workload", "tiny", "--workers", "3",
             "--horizon", "20", "--schemes", "original", "adaptive",
             "--plot"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "specsync-adaptive" in out
        assert "= original" in out  # plot legend uses scheme keys

    def test_compare_heterogeneous_cluster(self, capsys):
        code = main(
            ["compare", "--workload", "tiny", "--workers", "4",
             "--heterogeneous", "--horizon", "10", "--schemes", "original"]
        )
        assert code == 0
        assert "m3.xlarge" in capsys.readouterr().out


class TestExperimentCommand:
    def test_experiment_dispatch_uses_registry(self, capsys, monkeypatch):
        """The experiment subcommand resolves from EXPERIMENTS and prints
        the driver's render() output (stubbed for speed)."""
        from repro import cli

        class StubResult:
            def render(self):
                return "STUB-RENDERED-TABLE"

        calls = {}

        def stub_driver(scale, seed=3):
            calls["scale"] = scale
            calls["seed"] = seed
            return StubResult()

        monkeypatch.setitem(cli.EXPERIMENTS, "table1", stub_driver)
        code = main(["experiment", "table1", "--scale", "smoke", "--seed", "9"])
        assert code == 0
        assert "STUB-RENDERED-TABLE" in capsys.readouterr().out
        assert calls["seed"] == 9
        from repro.experiments import ExperimentScale

        assert calls["scale"] is ExperimentScale.SMOKE

    def test_all_registered_experiments_are_callable(self):
        for name, driver in EXPERIMENTS.items():
            assert callable(driver), name
