"""Tests for workload presets and the Workload abstraction."""

import pytest

from repro import AspPolicy, ClusterSpec
from repro.workloads import (
    PAPER_WORKLOADS,
    cifar10_workload,
    imagenet_workload,
    matrix_factorization_workload,
    tiny_workload,
)


class TestTable1Metadata:
    """The presets must carry the paper's Table I numbers exactly."""

    def test_mf_row(self):
        wl = matrix_factorization_workload()
        assert wl.paper_num_parameters == 4_200_000
        assert wl.paper_dataset_size == 100_000
        assert wl.paper_iteration_time_s == 3.0
        assert wl.param_wire_bytes == 4.2e6 * 4

    def test_cifar_row(self):
        wl = cifar10_workload()
        assert wl.paper_num_parameters == 2_500_000
        assert wl.paper_dataset_size == 50_000
        assert wl.paper_iteration_time_s == 14.0
        assert wl.param_wire_bytes == 2.5e6 * 4

    def test_imagenet_row(self):
        wl = imagenet_workload()
        assert wl.paper_num_parameters == 5_900_000
        assert wl.paper_dataset_size == 281_167
        assert wl.paper_iteration_time_s == 70.0
        assert wl.param_wire_bytes == 5.9e6 * 4

    def test_paper_workloads_in_table_order(self):
        names = [wl.name for wl in PAPER_WORKLOADS()]
        assert names == ["mf", "cifar10", "imagenet"]

    def test_iteration_time_matches_compute_model(self):
        for wl in PAPER_WORKLOADS():
            assert wl.base_compute.mean_time_s == wl.paper_iteration_time_s


class TestConstruction:
    def test_factories_produce_fresh_objects(self):
        wl = tiny_workload()
        assert wl.model_factory() is not wl.model_factory()
        assert wl.update_rule_factory() is not wl.update_rule_factory()

    def test_dataset_seeded(self):
        wl = tiny_workload()
        a = wl.dataset_factory(1)
        b = wl.dataset_factory(1)
        import numpy as np

        Xa, _ = a.gather(np.arange(5))
        Xb, _ = b.gather(np.arange(5))
        np.testing.assert_allclose(Xa, Xb)

    def test_with_overrides_replaces_fields(self):
        wl = tiny_workload().with_overrides(batch_size=99)
        assert wl.batch_size == 99
        assert tiny_workload().batch_size != 99

    def test_model_matches_dataset_dimensions(self):
        """Every preset's model must accept its dataset's batches."""
        import numpy as np

        for wl in PAPER_WORKLOADS() + [tiny_workload()]:
            dataset = wl.dataset_factory(0)
            model = wl.model_factory()
            params = model.init_params(np.random.default_rng(0))
            batch = dataset.gather(np.arange(min(16, dataset.num_samples)))
            loss = model.loss(params, batch)
            assert loss == loss  # not NaN


class TestBuildEngine:
    def test_build_and_run(self):
        cluster = ClusterSpec.homogeneous(3)
        engine = tiny_workload().build_engine(cluster, AspPolicy(), seed=0,
                                              horizon_s=10.0)
        result = engine.run()
        assert result.workload == "tiny"
        assert result.num_workers == 3

    def test_horizon_override(self):
        cluster = ClusterSpec.homogeneous(2)
        result = tiny_workload().run(cluster, AspPolicy(), horizon_s=5.0)
        assert result.horizon_s == 5.0

    def test_default_horizon_used(self):
        wl = tiny_workload()
        cluster = ClusterSpec.homogeneous(2)
        result = wl.run(cluster, AspPolicy())
        assert result.horizon_s == wl.default_horizon_s
