"""The generic dataflow solver: direction, joins, and exception edges."""

import ast
import textwrap

from repro.analysis.flow import DataflowProblem, build_cfg, solve
from repro.analysis.flow.cfg import ENTRY, EXIT, RAISE


def _cfg(src):
    return build_cfg(ast.parse(textwrap.dedent(src)).body[0])


class _Defined(DataflowProblem):
    """Forward may-analysis: names assigned on some path to each block."""

    direction = "forward"

    def boundary(self, cfg):
        return frozenset()

    def initial(self):
        return frozenset()

    def join(self, a, b):
        return a | b

    def transfer(self, block, value):
        stmt = block.stmt
        if isinstance(stmt, ast.Assign):
            names = {
                t.id for t in stmt.targets if isinstance(t, ast.Name)
            }
            return value | frozenset(names)
        return value


def test_forward_join_over_branches():
    cfg = _cfg('''
def f(c):
    if c:
        a = 1
    else:
        b = 2
    tail()
''')
    solution = solve(cfg, _Defined())
    # At EXIT, both branch assignments may have happened ...
    assert solution[EXIT][0] == frozenset({"a", "b"})
    # ... but inside the true branch only `a` is defined.
    (a_block,) = [
        bid for bid, b in cfg.blocks.items()
        if isinstance(b.stmt, ast.Assign) and b.line == 4
    ]
    assert solution[a_block][1] == frozenset({"a"})


def test_forward_fixpoint_through_loop():
    cfg = _cfg('''
def f(n):
    total = 0
    while n:
        bump = step(n)
        n = bump
    return total
''')
    solution = solve(cfg, _Defined())
    # Values assigned in the loop body must flow around the back edge to
    # the loop head (requires iterating to a fixpoint, not one pass).
    head = [bid for bid, b in cfg.blocks.items() if b.label == "while"][0]
    assert solution[head][0] >= frozenset({"total", "bump", "n"})


class _MayRaisePoint(DataflowProblem):
    """Tracks whether an 'armed' flag survives to the raise block."""

    direction = "forward"
    exc_propagates_in = True

    def boundary(self, cfg):
        return frozenset()

    def initial(self):
        return frozenset()

    def join(self, a, b):
        return a | b

    def transfer(self, block, value):
        stmt = block.stmt
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            name = getattr(stmt.value.func, "id", None)
            if name == "arm":
                return value | {"armed"}
            if name == "disarm":
                return value - {"armed"}
        return value


def test_exc_propagates_in_sends_pre_state():
    # arm() raising means the arming never happened: with
    # exc_propagates_in the RAISE block must NOT see "armed" from the
    # arm() statement's own exception edge.
    cfg = _cfg('''
def f():
    arm()
''')
    solution = solve(cfg, _MayRaisePoint())
    assert solution[RAISE][0] == frozenset()
    assert solution[EXIT][0] == frozenset({"armed"})


def test_exc_edge_between_statements_carries_held_state():
    # work() raising between arm() and disarm() leaks the armed state to
    # RAISE — the precision FLOW-RELEASE is built on.
    cfg = _cfg('''
def f():
    arm()
    work()
    disarm()
''')
    solution = solve(cfg, _MayRaisePoint())
    assert "armed" in solution[RAISE][0]
    assert solution[EXIT][0] == frozenset()


class _Live(DataflowProblem):
    """Backward liveness of plain names (loads after the block)."""

    direction = "backward"

    def boundary(self, cfg):
        return frozenset()

    def initial(self):
        return frozenset()

    def join(self, a, b):
        return a | b

    def transfer(self, block, value):
        stmt = block.stmt
        if stmt is None:
            return value
        kill = set()
        gen = set()
        if isinstance(stmt, ast.Assign):
            kill = {t.id for t in stmt.targets if isinstance(t, ast.Name)}
            gen = {
                n.id
                for n in ast.walk(stmt.value)
                if isinstance(n, ast.Name)
            }
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            gen = {
                n.id
                for n in ast.walk(stmt.value)
                if isinstance(n, ast.Name)
            }
        return (value - kill) | gen


def test_backward_liveness():
    cfg = _cfg('''
def f():
    a = source()
    b = a
    return b
''')
    solution = solve(cfg, _Live())
    # Nothing the function defines is live before it runs (the callee
    # name `source` is a free variable, so it legitimately is).
    assert solution[ENTRY][0] == frozenset({"source"})
    (b_assign,) = [
        bid for bid, b in cfg.blocks.items()
        if isinstance(b.stmt, ast.Assign) and b.line == 4
    ]
    # `a` is live entering `b = a` (backward "post" side), `b` after it.
    assert "b" in solution[b_assign][0]
    assert "a" in solution[b_assign][1]


def test_unknown_direction_rejected():
    class Bad(_Defined):
        direction = "sideways"

    cfg = _cfg('''
def f():
    pass
''')
    try:
        solve(cfg, Bad())
    except ValueError as exc:
        assert "sideways" in str(exc)
    else:  # pragma: no cover
        raise AssertionError("expected ValueError")
