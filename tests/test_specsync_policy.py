"""End-to-end tests of the SpecSync policy inside the engine."""

import pytest

from repro import (
    AspPolicy,
    ClusterSpec,
    SpecSyncHyperparams,
    SpecSyncPolicy,
    SspPolicy,
)
from repro.cluster.compute import ComputeTimeModel
from repro.workloads import tiny_workload


CLUSTER = ClusterSpec.homogeneous(6)


def wave_workload():
    """Low jitter keeps workers phase-coherent: pushes arrive in waves,
    the regime where speculation fires."""
    return tiny_workload().with_overrides(
        base_compute=ComputeTimeModel(mean_time_s=1.0, jitter_sigma=0.05)
    )


def run(policy, seed=0, horizon=60.0, **kwargs):
    return wave_workload().run(CLUSTER, policy, seed=seed, horizon_s=horizon,
                               **kwargs)


class TestNames:
    def test_adaptive_name(self):
        assert SpecSyncPolicy.adaptive().name == "specsync-adaptive"

    def test_cherrypick_name(self):
        policy = SpecSyncPolicy.cherrypick(SpecSyncHyperparams(0.2, 0.25))
        assert policy.name == "specsync-cherrypick"

    def test_composed_name(self):
        policy = SpecSyncPolicy.adaptive(base_policy=SspPolicy(3))
        assert policy.name == "specsync-adaptive+ssp(s=3)"


class TestAbortBehaviour:
    def test_adaptive_produces_aborts(self):
        result = run(SpecSyncPolicy.adaptive())
        assert result.total_aborts > 0
        assert result.policy_summary["resyncs_honored"] == result.total_aborts

    def test_cherrypick_produces_aborts(self):
        result = run(SpecSyncPolicy.cherrypick(SpecSyncHyperparams(0.2, 0.3)))
        assert result.total_aborts > 0

    def test_aborts_trigger_restart_pulls(self):
        result = run(SpecSyncPolicy.adaptive())
        restarts = [p for p in result.traces.pulls if p.is_restart]
        assert len(restarts) == result.total_aborts

    def test_notify_per_iteration(self):
        result = run(SpecSyncPolicy.adaptive())
        assert result.policy_summary["notifies_sent"] == result.total_iterations

    def test_resyncs_honored_at_most_sent(self):
        result = run(SpecSyncPolicy.adaptive())
        assert (
            result.policy_summary["resyncs_honored"]
            <= result.policy_summary["resyncs_sent"]
        )

    def test_abort_budget_zero_disables_aborts(self):
        result = run(SpecSyncPolicy.adaptive(), max_aborts_per_iteration=0)
        assert result.total_aborts == 0

    def test_at_most_one_abort_per_iteration_by_default(self):
        result = run(SpecSyncPolicy.adaptive())
        by_iteration = {}
        for abort in result.traces.aborts:
            key = (abort.worker_id, abort.iteration)
            by_iteration[key] = by_iteration.get(key, 0) + 1
        assert all(count <= 1 for count in by_iteration.values())

    def test_never_aborting_hyperparams_match_asp_progress(self):
        """With an unreachable threshold, SpecSync degenerates to ASP."""
        policy = SpecSyncPolicy.cherrypick(SpecSyncHyperparams(0.01, 5.0))
        specsync = run(policy, seed=4)
        asp = run(AspPolicy(), seed=4)
        assert specsync.total_aborts == 0
        assert specsync.total_iterations == asp.total_iterations


class TestFreshness:
    def test_staleness_reduced_vs_asp(self):
        """The paper's core effect: re-syncs lower the average number of
        missed updates per applied push (wave-coherent regime)."""
        asp = run(AspPolicy(), seed=2, horizon=120.0)
        spec = run(SpecSyncPolicy.adaptive(), seed=2, horizon=120.0)
        assert spec.mean_staleness < asp.mean_staleness

    def test_throughput_cost_is_bounded(self):
        """Aborts delay iterations but must not collapse throughput."""
        asp = run(AspPolicy(), seed=2, horizon=120.0)
        spec = run(SpecSyncPolicy.adaptive(), seed=2, horizon=120.0)
        assert spec.total_iterations > 0.6 * asp.total_iterations


class TestControlTraffic:
    def test_notify_and_resync_accounted(self):
        result = run(SpecSyncPolicy.adaptive())
        by_kind = result.ledger.bytes_by_kind()
        assert by_kind.get("notify", 0) > 0
        assert by_kind.get("resync", 0) > 0

    def test_control_fraction_negligible(self):
        """Paper Section VI-D: SpecSync's extra communication is tiny."""
        result = run(SpecSyncPolicy.adaptive())
        assert result.ledger.control_fraction() < 0.01


class TestComposition:
    def test_specsync_on_ssp_respects_bound(self):
        bound = 2
        policy = SpecSyncPolicy.adaptive(base_policy=SspPolicy(bound))
        result = run(policy)
        progress = {w: 0 for w in range(CLUSTER.num_workers)}
        for event in result.traces.pushes:
            progress[event.worker_id] += 1
            spread = max(progress.values()) - min(progress.values())
            assert spread <= bound + 1

    def test_specsync_on_ssp_still_aborts(self):
        policy = SpecSyncPolicy.adaptive(base_policy=SspPolicy(3))
        result = run(policy)
        assert result.total_aborts > 0

    def test_composed_summary_includes_base(self):
        policy = SpecSyncPolicy.adaptive(base_policy=SspPolicy(3))
        result = run(policy)
        assert "base" in result.policy_summary


class TestDeterminism:
    def test_specsync_runs_are_reproducible(self):
        a = run(SpecSyncPolicy.adaptive(), seed=9)
        b = run(SpecSyncPolicy.adaptive(), seed=9)
        assert a.total_aborts == b.total_aborts
        assert a.final_loss == b.final_loss
        assert [p.time for p in a.traces.pushes] == [p.time for p in b.traces.pushes]
