"""Tests for RunResult aggregation and convergence helpers."""

import pytest

from repro import AspPolicy, ClusterSpec, ConvergenceCriterion
from repro.workloads import tiny_workload


@pytest.fixture(scope="module")
def result():
    return tiny_workload().run(
        ClusterSpec.homogeneous(3), AspPolicy(), seed=1, horizon_s=60.0
    )


class TestAggregates:
    def test_total_iterations_sums_workers(self, result):
        assert result.total_iterations == sum(
            w.iterations for w in result.worker_stats
        )

    def test_total_iterations_matches_store_pushes(self, result):
        assert result.total_iterations == len(result.traces.pushes)

    def test_final_loss_is_last_eval(self, result):
        assert result.final_loss == result.curve.points()[-1].loss

    def test_transfer_positive(self, result):
        assert result.total_transfer_bytes > 0

    def test_summary_keys(self, result):
        summary = result.summary()
        for key in ("scheme", "workload", "workers", "iterations",
                    "mean_staleness", "final_loss", "transfer_bytes"):
            assert key in summary


class TestConvergenceHelpers:
    def test_time_to_convergence_loose_target(self, result):
        criterion = ConvergenceCriterion(target_loss=10.0, consecutive=1)
        assert result.time_to_convergence(criterion) is not None

    def test_time_to_convergence_impossible_target(self, result):
        criterion = ConvergenceCriterion(target_loss=-1.0, consecutive=1)
        assert result.time_to_convergence(criterion) is None

    def test_evaluate_convergence_caches(self, result):
        criterion = ConvergenceCriterion(target_loss=10.0, consecutive=1)
        conv = result.evaluate_convergence(criterion)
        assert result.convergence is conv

    def test_speedup_over_self_is_one(self, result):
        criterion = ConvergenceCriterion(target_loss=10.0, consecutive=1)
        assert result.speedup_over(result, criterion) == pytest.approx(1.0)

    def test_speedup_raises_without_convergence(self, result):
        criterion = ConvergenceCriterion(target_loss=-1.0, consecutive=1)
        with pytest.raises(ValueError):
            result.speedup_over(result, criterion)

    def test_repr_mentions_scheme_and_workload(self, result):
        text = repr(result)
        assert "asp" in text and "tiny" in text
