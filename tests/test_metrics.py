"""Tests for traces, PAP analysis, curves, and convergence detection."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics import (
    BoxStats,
    ConvergenceCriterion,
    EvalPoint,
    LossCurve,
    PapAnalysis,
    PullEvent,
    PushEvent,
    AbortEvent,
    TraceRecorder,
    detect_convergence,
    pap_box_stats,
    pap_interval_counts,
)


def pull(time, worker, version=0, iteration=0, restart=False):
    return PullEvent(time=time, worker_id=worker, version=version,
                     iteration=iteration, is_restart=restart)


def push(time, worker, version=1, snap=0, iteration=0):
    return PushEvent(time=time, worker_id=worker, version_after=version,
                     snapshot_version=snap, staleness=version - 1 - snap,
                     iteration=iteration)


class TestTraceRecorder:
    def test_pushes_in_window(self):
        traces = TraceRecorder()
        for i, t in enumerate([1.0, 2.0, 3.0, 4.0]):
            traces.record_push(push(t, worker=i, version=i + 1))
        assert traces.pushes_in_window(1.0, 3.0) == 2  # (1, 3] -> 2.0, 3.0
        assert traces.pushes_in_window(0.0, 10.0) == 4

    def test_pushes_in_window_excludes_worker(self):
        traces = TraceRecorder()
        traces.record_push(push(1.0, worker=0))
        traces.record_push(push(2.0, worker=1, version=2))
        assert traces.pushes_in_window(0.0, 3.0, exclude_worker=0) == 1

    def test_out_of_order_push_rejected(self):
        traces = TraceRecorder()
        traces.record_push(push(2.0, 0))
        with pytest.raises(ValueError):
            traces.record_push(push(1.0, 1))

    def test_grouping_by_worker(self):
        traces = TraceRecorder()
        traces.record_pull(pull(1.0, 0))
        traces.record_pull(pull(2.0, 1))
        traces.record_pull(pull(3.0, 0))
        grouped = traces.pulls_by_worker()
        assert [e.time for e in grouped[0]] == [1.0, 3.0]
        assert [e.time for e in grouped[1]] == [2.0]

    def test_mean_staleness(self):
        traces = TraceRecorder()
        assert traces.mean_staleness() == 0.0
        traces.record_push(push(1.0, 0, version=1, snap=0))  # staleness 0
        traces.record_push(push(2.0, 1, version=2, snap=0))  # staleness 1
        assert traces.mean_staleness() == pytest.approx(0.5)

    def test_wasted_compute(self):
        traces = TraceRecorder()
        traces.record_abort(AbortEvent(1.0, 0, 0, wasted_compute_s=2.5))
        traces.record_abort(AbortEvent(2.0, 1, 0, wasted_compute_s=1.5))
        assert traces.total_wasted_compute() == pytest.approx(4.0)


class TestPapAnalysis:
    def build_traces(self):
        """Worker 0 pulls at t=0 and t=10; peers push at 0.5, 1.5, 2.5, ..."""
        traces = TraceRecorder()
        traces.record_pull(pull(0.0, worker=0))
        for i, t in enumerate([0.5, 1.5, 2.5, 3.5]):
            traces.record_push(push(t, worker=1 + (i % 3), version=i + 1))
        traces.record_pull(pull(10.0, worker=0))
        return traces

    def test_interval_counts_basic(self):
        counts = pap_interval_counts(self.build_traces(), interval_s=1.0,
                                     num_intervals=4)
        # worker 0's first pull: one peer push in each of intervals 0..3
        assert counts[0] == [1]
        assert counts[1] == [1]
        assert counts[3] == [1]

    def test_own_pushes_excluded(self):
        traces = TraceRecorder()
        traces.record_pull(pull(0.0, worker=0))
        traces.record_push(push(0.5, worker=0))  # own push — not PAP
        traces.record_push(push(0.7, worker=1, version=2))
        traces.record_pull(pull(5.0, worker=0))
        counts = pap_interval_counts(traces, 1.0, 1)
        assert counts[0] == [1]

    def test_windows_past_next_pull_dropped(self):
        traces = TraceRecorder()
        traces.record_pull(pull(0.0, worker=0))
        traces.record_pull(pull(1.5, worker=0))  # next pull at 1.5
        counts = pap_interval_counts(traces, 1.0, 3)
        # interval 0 ([0,1)) fits; interval 1 ([1,2)) crosses 1.5 — dropped.
        assert len(counts[0]) >= 1
        assert counts[1] == []

    def test_box_stats(self):
        stats = BoxStats.from_samples([1.0, 2.0, 3.0, 4.0, 5.0])
        assert stats.median == 3.0
        assert stats.p5 <= stats.p25 <= stats.median <= stats.p75 <= stats.p95

    def test_box_stats_empty_rejected(self):
        with pytest.raises(ValueError):
            BoxStats.from_samples([])

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            pap_interval_counts(TraceRecorder(), interval_s=0.0)

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=5, max_size=40))
    def test_box_stats_ordering_property(self, samples):
        stats = BoxStats.from_samples(samples)
        assert stats.p5 <= stats.p25 <= stats.median <= stats.p75 <= stats.p95


class TestLossCurve:
    def build(self, losses, dt=1.0):
        curve = LossCurve()
        for i, loss in enumerate(losses):
            curve.add(EvalPoint(time=i * dt, total_iterations=i * 10, loss=loss))
        return curve

    def test_time_to_loss(self):
        curve = self.build([3.0, 2.0, 1.0, 0.5])
        assert curve.time_to_loss(1.0) == 2.0
        assert curve.time_to_loss(0.1) is None

    def test_iterations_to_loss(self):
        curve = self.build([3.0, 1.0])
        assert curve.iterations_to_loss(1.5) == 10

    def test_loss_at_time_steps(self):
        curve = self.build([3.0, 2.0, 1.0])
        assert curve.loss_at_time(0.5) == 3.0
        assert curve.loss_at_time(1.0) == 2.0
        assert curve.loss_at_time(99.0) == 1.0

    def test_out_of_order_rejected(self):
        curve = LossCurve()
        curve.add(EvalPoint(2.0, 0, 1.0))
        with pytest.raises(ValueError):
            curve.add(EvalPoint(1.0, 0, 1.0))

    def test_best_and_final(self):
        curve = self.build([3.0, 0.5, 1.0])
        assert curve.best_loss() == 0.5
        assert curve.final_loss == 1.0

    def test_empty_curve_raises(self):
        with pytest.raises(ValueError):
            LossCurve().final_loss


class TestConvergence:
    def build(self, losses):
        curve = LossCurve()
        for i, loss in enumerate(losses):
            curve.add(EvalPoint(time=float(i), total_iterations=i, loss=loss))
        return curve

    def test_requires_consecutive(self):
        curve = self.build([1.0, 0.4, 0.6, 0.4, 0.4, 0.4])
        # one dip at idx 1 does not count with consecutive=3
        result = detect_convergence(curve, ConvergenceCriterion(0.5, consecutive=3))
        assert result.converged
        assert result.time == 3.0  # first of the qualifying run

    def test_never_converges(self):
        curve = self.build([1.0, 0.9, 0.8])
        result = detect_convergence(curve, ConvergenceCriterion(0.5, consecutive=2))
        assert not result.converged
        assert result.time is None

    def test_exactly_at_target_counts(self):
        curve = self.build([0.5, 0.5])
        result = detect_convergence(curve, ConvergenceCriterion(0.5, consecutive=2))
        assert result.converged and result.time == 0.0

    def test_paper_default_five_consecutive(self):
        losses = [1.0] + [0.4] * 4 + [0.6] + [0.4] * 5
        curve = self.build(losses)
        result = detect_convergence(curve, ConvergenceCriterion(0.5, consecutive=5))
        assert result.converged
        assert result.time == 6.0  # the run of 5 starts after the blip

    def test_require_time(self):
        curve = self.build([1.0])
        result = detect_convergence(curve, ConvergenceCriterion(0.5, consecutive=1))
        with pytest.raises(ValueError):
            result.require_time()

    def test_invalid_consecutive(self):
        with pytest.raises(ValueError):
            ConvergenceCriterion(0.5, consecutive=0)


class TestPapWindowCounts:
    def test_window_counts_per_pull(self):
        traces = TraceRecorder()
        traces.record_pull(pull(0.0, worker=0))
        traces.record_push(push(0.4, worker=1, version=1))
        traces.record_push(push(0.9, worker=2, version=2))
        traces.record_pull(pull(2.0, worker=0))
        analysis = PapAnalysis(traces, interval_s=1.0, num_intervals=2)
        assert analysis.window_counts(1.0) == [2]

    def test_windows_crossing_next_pull_skipped(self):
        traces = TraceRecorder()
        traces.record_pull(pull(0.0, worker=0))
        traces.record_pull(pull(0.5, worker=0))
        traces.record_pull(pull(5.0, worker=0))
        analysis = PapAnalysis(traces, interval_s=1.0, num_intervals=2)
        # first pull's 1s window crosses the next pull at 0.5 -> skipped;
        # second pull's window [0.5, 1.5) fits.
        assert len(analysis.window_counts(1.0)) == 1

    def test_median_pap_within(self):
        traces = TraceRecorder()
        for k in range(4):
            traces.record_pull(pull(float(10 * k), worker=0))
            # two peer pushes shortly after each pull
            traces.record_push(push(10 * k + 0.2, worker=1, version=2 * k + 1))
            traces.record_push(push(10 * k + 0.7, worker=2, version=2 * k + 2))
        analysis = PapAnalysis(traces, interval_s=1.0, num_intervals=2)
        assert analysis.median_pap_within(1.0) == 2.0

    def test_empty_traces_zero(self):
        analysis = PapAnalysis(TraceRecorder(), 1.0, 2)
        assert analysis.median_pap_within(1.0) == 0.0

    def test_uniformity_ratio_single_interval(self):
        traces = TraceRecorder()
        traces.record_pull(pull(0.0, worker=0))
        traces.record_push(push(0.5, worker=1))
        traces.record_pull(pull(1.0, worker=0))
        analysis = PapAnalysis(traces, interval_s=1.0, num_intervals=1)
        assert analysis.uniformity_ratio() == 1.0
